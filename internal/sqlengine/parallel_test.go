package sqlengine

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Tests for morsel-driven parallel execution. The determinism tests
// assert bitwise-identical results across worker counts — the engine's
// core guarantee (fixed morsel boundaries, morsel-ordered merges).

// newParallelDB opens an engine with an explicit worker count.
func newParallelDB(t *testing.T, workers int, cfg Config) *DB {
	t.Helper()
	cfg.Parallelism = workers
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// fillAmplitudeTable inserts a synthetic nonzero-amplitude table t and
// the 4-row Hadamard gate table h. rows should exceed 2*morselRows so
// scans morselize.
func fillAmplitudeTable(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL, i REAL)")
	batch := make([]string, 0, 500)
	for k := 0; k < rows; k++ {
		batch = append(batch, fmt.Sprintf("(%d, %g, %g)", k, 1.0/float64(k+1), 0.25/float64(k+3)))
		if len(batch) == 500 || k == rows-1 {
			mustExec(t, db, "INSERT INTO t VALUES "+strings.Join(batch, ","))
			batch = batch[:0]
		}
	}
	mustExec(t, db, "CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)")
	mustExec(t, db, "INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)")
}

// requireBitIdentical compares two result sets exactly, including the
// IEEE-754 bit pattern of every REAL value and the row order.
func requireBitIdentical(t *testing.T, name string, a, b []Row) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: row counts differ: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: row %d widths differ", name, i)
		}
		for j := range a[i] {
			va, vb := a[i][j], b[i][j]
			if va.T != vb.T || va.I != vb.I || va.S != vb.S ||
				math.Float64bits(va.F) != math.Float64bits(vb.F) {
				t.Fatalf("%s: row %d col %d differs: %#v vs %#v", name, i, j, va, vb)
			}
		}
	}
}

const testRows = 2*morselRows + 1531 // > minParallelMorsels morsels, uneven tail

func TestParallelScanFilterProjectMatchesSerial(t *testing.T) {
	q := "SELECT s * 2 + 1, r, (s & 7) FROM t WHERE (s & 3) = 1"
	var ref []Row
	for _, workers := range []int{1, 4} {
		db := newParallelDB(t, workers, Config{})
		fillAmplitudeTable(t, db, testRows)
		rows := queryAll(t, db, q)
		if want := (testRows + 2) / 4; len(rows) != want {
			t.Fatalf("workers=%d: got %d rows, want %d", workers, len(rows), want)
		}
		if ref == nil {
			ref = rows
			continue
		}
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), ref, rows)
	}
}

func TestParallelGateStageBitIdentical(t *testing.T) {
	q := `SELECT ((t.s & ~1) | h.out_s) AS s,
	       SUM((t.r * h.r) - (t.i * h.i)) AS r,
	       SUM((t.r * h.i) + (t.i * h.r)) AS i
	FROM t JOIN h ON h.in_s = (t.s & 1)
	GROUP BY ((t.s & ~1) | h.out_s)
	ORDER BY s`
	var ref []Row
	for _, workers := range []int{1, 3, 4} {
		db := newParallelDB(t, workers, Config{})
		fillAmplitudeTable(t, db, testRows)
		rows := queryAll(t, db, q)
		if len(rows) != testRows+1 { // out states extend one past the input range
			t.Fatalf("workers=%d: got %d groups, want %d", workers, len(rows), testRows+1)
		}
		if ref == nil {
			ref = rows
			continue
		}
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), ref, rows)
	}
}

func TestParallelLeftJoinResidualMatchesSerial(t *testing.T) {
	// LEFT join with a residual predicate: every probe row must appear,
	// null-extended when the residual rejects all matches.
	q := `SELECT t.s, h.out_s FROM t LEFT JOIN h ON h.in_s = (t.s & 1) AND h.r > 0`
	var ref []Row
	for _, workers := range []int{1, 4} {
		db := newParallelDB(t, workers, Config{})
		fillAmplitudeTable(t, db, testRows)
		rows := queryAll(t, db, q)
		if ref == nil {
			ref = rows
			continue
		}
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), ref, rows)
	}
}

func TestParallelDistinctDeterministic(t *testing.T) {
	q := "SELECT DISTINCT (s & 63) FROM t"
	var ref []Row
	for _, workers := range []int{1, 4} {
		db := newParallelDB(t, workers, Config{})
		fillAmplitudeTable(t, db, testRows)
		rows := queryAll(t, db, q)
		if len(rows) != 64 {
			t.Fatalf("workers=%d: got %d distinct values, want 64", workers, len(rows))
		}
		if ref == nil {
			ref = rows
			continue
		}
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), ref, rows)
	}
}

// TestParallelAggBudgetFallback forces the parallel aggregation to
// abort on memory pressure and re-run through the serial spilling path;
// results must match an unconstrained run.
func TestParallelAggBudgetFallback(t *testing.T) {
	q := "SELECT s, SUM(r), COUNT(*) FROM t GROUP BY s ORDER BY s"
	ref := func() []Row {
		db := newParallelDB(t, 4, Config{})
		fillAmplitudeTable(t, db, testRows)
		return queryAll(t, db, q)
	}()
	// A budget that holds the base tables but not a full hash table of
	// one group per row.
	db := newParallelDB(t, 4, Config{MemoryBudget: 3 << 20, SpillDir: t.TempDir()})
	fillAmplitudeTable(t, db, testRows)
	rows := queryAll(t, db, q)
	if len(rows) != len(ref) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ref))
	}
	for i := range rows {
		for j := range rows[i] {
			if CompareTotal(rows[i][j], ref[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, j, rows[i][j], ref[i][j])
			}
		}
	}
	if live := db.Stats().LiveBytes; live <= 0 {
		t.Fatalf("expected live table bytes, got %d", live)
	}
}

// TestParallelAggBudgetFallbackBitIdentical pins the determinism
// guarantee at the budget boundary: the morsel-vs-serial fallback
// decision shares one working-floor total across workers, so under the
// same tight budget every worker count takes the same path and
// multi-row floating-point groups sum in the same order.
func TestParallelAggBudgetFallbackBitIdentical(t *testing.T) {
	// 64 rows per group: SUM(r) order matters in the last bits.
	q := "SELECT (s & ~63), SUM(r), AVG(r) FROM t GROUP BY (s & ~63) ORDER BY 1"
	for _, budget := range []int64{0, 3 << 20, 1 << 20} {
		var ref []Row
		for _, workers := range []int{1, 4} {
			db := newParallelDB(t, workers, Config{MemoryBudget: budget, SpillDir: t.TempDir()})
			fillAmplitudeTable(t, db, testRows)
			rows := queryAll(t, db, q)
			if ref == nil {
				ref = rows
				continue
			}
			requireBitIdentical(t, fmt.Sprintf("budget=%d workers=%d", budget, workers), ref, rows)
		}
	}
}

// TestParallelEarlyCloseReleases verifies a parallel query leaves no
// worker goroutines behind and that closing the result set releases
// every budget reservation the workers made.
func TestParallelEarlyCloseReleases(t *testing.T) {
	db := newParallelDB(t, 4, Config{})
	fillAmplitudeTable(t, db, testRows)
	baseline := db.Stats().LiveBytes
	goroutines := runtime.NumGoroutine()

	rs, err := db.Query(`SELECT ((t.s & ~1) | h.out_s) AS s, SUM(t.r * h.r) AS r
		FROM t JOIN h ON h.in_s = (t.s & 1) GROUP BY ((t.s & ~1) | h.out_s)`)
	if err != nil {
		t.Fatal(err)
	}
	// Read one row, then abandon the rest.
	if _, ok, err := rs.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	rs.Close()

	if live := db.Stats().LiveBytes; live != baseline {
		t.Fatalf("live bytes after Close = %d, want %d (baseline)", live, baseline)
	}
	// Workers are fork-join inside Query, so the goroutine count must
	// return to the pre-query level (allow scheduler lag).
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= goroutines {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines after query = %d, want <= %d", runtime.NumGoroutine(), goroutines)
}

func TestExplainReportsWorkers(t *testing.T) {
	db := newParallelDB(t, 4, Config{})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	plan, err := db.Explain("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "workers=4") || !strings.Contains(plan, "morsel-parallel") {
		t.Fatalf("plan missing worker report:\n%s", plan)
	}
}

// TestParallelismDSN checks the database/sql DSN parameter.
func TestParallelismDSN(t *testing.T) {
	cfg, err := parseDSN("mem://pardsn?parallelism=3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Parallelism != 3 {
		t.Fatalf("Parallelism = %d, want 3", cfg.Parallelism)
	}
	if _, err := parseDSN("mem://pardsn?parallelism=abc"); err == nil {
		t.Fatal("expected error for non-numeric parallelism")
	}
}

// TestParallelGlobalAggregate covers the no-GROUP-BY path (single
// group, merged across morsels in index order).
func TestParallelGlobalAggregate(t *testing.T) {
	var ref []Row
	for _, workers := range []int{1, 4} {
		db := newParallelDB(t, workers, Config{})
		fillAmplitudeTable(t, db, testRows)
		rows := queryAll(t, db, "SELECT COUNT(*), SUM(r), MIN(s), MAX(s), AVG(r) FROM t")
		if len(rows) != 1 {
			t.Fatalf("workers=%d: got %d rows", workers, len(rows))
		}
		if rows[0][0].I != int64(testRows) {
			t.Fatalf("workers=%d: COUNT(*) = %v", workers, rows[0][0])
		}
		if ref == nil {
			ref = rows
			continue
		}
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), ref, rows)
	}
}
