package sqlengine

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols...) or
// CREATE TABLE name AS SELECT ....
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
	AsSelect    *SelectStmt // non-nil for CTAS
}

// ColumnDef declares one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type Type
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...) or
// INSERT INTO name [(cols)] SELECT ....
type InsertStmt struct {
	Table  string
	Cols   []string
	Rows   [][]Expr
	Select *SelectStmt
}

// DeleteStmt is DELETE FROM name [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// UpdateStmt is UPDATE name SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

// ExplainStmt is EXPLAIN [ANALYZE] select: render the physical plan
// (with cost estimates), executing the query and annotating actual row
// counts when Analyze is set.
type ExplainStmt struct {
	Analyze bool
	Select  *SelectStmt
}

// CTE is one WITH entry: name [ (cols) ] AS (select).
type CTE struct {
	Name   string
	Cols   []string
	Select *SelectStmt
}

// SelectStmt is a full SELECT with optional WITH prefix.
type SelectStmt struct {
	With     []CTE
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil means no FROM (e.g. SELECT 1+1)
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
}

// SelectItem is one projection: expression with optional alias, or a
// star (optionally qualified: t.*).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// JoinClause is one JOIN in the FROM list.
type JoinClause struct {
	Type  string // "INNER", "LEFT", "CROSS"
	Table TableRef
	On    Expr // nil for CROSS
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a named table or a parenthesized subquery in FROM.
type TableRef interface{ tableRef() }

// TableName references a base table or CTE, with optional alias.
type TableName struct {
	Name  string
	Alias string
}

// SubqueryRef is (SELECT ...) alias in FROM.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*CreateTableStmt) stmt() {}
func (*ExplainStmt) stmt()     {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

func (*TableName) tableRef()   {}
func (*SubqueryRef) tableRef() {}

// Expr is a SQL expression AST node.
type Expr interface {
	expr()
	// Deparse renders the expression back to SQL text; the planner uses
	// it for structural matching (GROUP BY keys) and error messages.
	Deparse() string
}

// Literal is a constant value.
type Literal struct{ Val Value }

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct {
	Table string // "" if unqualified
	Name  string
}

// ParamRef is a ? placeholder, numbered left to right from 0.
type ParamRef struct{ Index int }

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies a prefix operator: -, +, ~, NOT.
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall is name(args), name(*), or name(DISTINCT arg).
type FuncCall struct {
	Name     string // uppercase
	Args     []Expr
	Star     bool
	Distinct bool
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	When Expr
	Then Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is x [NOT] IN (e1, e2, ...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X  Expr
	To Type
}

func (*Literal) expr()     {}
func (*ColumnRef) expr()   {}
func (*ParamRef) expr()    {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncCall) expr()    {}
func (*CaseExpr) expr()    {}
func (*IsNullExpr) expr()  {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*CastExpr) expr()    {}

func (e *Literal) Deparse() string {
	if e.Val.T == TypeText {
		return "'" + strings.ReplaceAll(e.Val.S, "'", "''") + "'"
	}
	return e.Val.String()
}

func (e *ColumnRef) Deparse() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *ParamRef) Deparse() string { return "?" }

func (e *BinaryExpr) Deparse() string {
	return "(" + e.L.Deparse() + " " + e.Op + " " + e.R.Deparse() + ")"
}

func (e *UnaryExpr) Deparse() string {
	if e.Op == "NOT" {
		return "(NOT " + e.X.Deparse() + ")"
	}
	return "(" + e.Op + e.X.Deparse() + ")"
}

func (e *FuncCall) Deparse() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Deparse()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(args, ", ") + ")"
}

func (e *CaseExpr) Deparse() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.Deparse())
	}
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.When.Deparse(), w.Then.Deparse())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.Deparse())
	}
	b.WriteString(" END")
	return b.String()
}

func (e *IsNullExpr) Deparse() string {
	if e.Not {
		return "(" + e.X.Deparse() + " IS NOT NULL)"
	}
	return "(" + e.X.Deparse() + " IS NULL)"
}

func (e *InExpr) Deparse() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.Deparse()
	}
	n := ""
	if e.Not {
		n = "NOT "
	}
	return "(" + e.X.Deparse() + " " + n + "IN (" + strings.Join(items, ", ") + "))"
}

func (e *BetweenExpr) Deparse() string {
	n := ""
	if e.Not {
		n = "NOT "
	}
	return "(" + e.X.Deparse() + " " + n + "BETWEEN " + e.Lo.Deparse() + " AND " + e.Hi.Deparse() + ")"
}

func (e *CastExpr) Deparse() string {
	return "CAST(" + e.X.Deparse() + " AS " + e.To.String() + ")"
}
