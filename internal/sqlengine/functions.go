package sqlengine

import (
	"fmt"
	"math"
	"strings"
)

// isAggregateName reports whether the (uppercase) function name is an
// aggregate.
func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "TOTAL", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// compileScalarFunc compiles a non-aggregate function call.
func compileScalarFunc(n *FuncCall, ctx *compileCtx) (compiledExpr, error) {
	args := make([]compiledExpr, len(n.Args))
	for i, a := range n.Args {
		c, err := compileExpr(a, ctx)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	need := func(min, max int) error {
		if len(args) < min || (max >= 0 && len(args) > max) {
			return fmt.Errorf("sqlengine: function %s: wrong argument count %d", n.Name, len(args))
		}
		return nil
	}
	evalArgs := func(row Row) ([]Value, error) {
		vals := make([]Value, len(args))
		for i, a := range args {
			v, err := a(row)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}

	float1 := func(f func(float64) float64) (compiledExpr, error) {
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return Null, err
			}
			x, err := v.AsFloat()
			if err != nil {
				return Null, err
			}
			return NewFloat(f(x)), nil
		}, nil
	}

	switch n.Name {
	case "ABS":
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return Null, err
			}
			switch v.T {
			case TypeInt:
				if v.I < 0 {
					return NewInt(-v.I), nil
				}
				return v, nil
			case TypeFloat:
				return NewFloat(math.Abs(v.F)), nil
			}
			return Null, fmt.Errorf("sqlengine: ABS requires a numeric argument")
		}, nil

	case "SQRT":
		return float1(math.Sqrt)
	case "EXP":
		return float1(math.Exp)
	case "LN":
		return float1(math.Log)
	case "LOG2":
		return float1(math.Log2)
	case "SIN":
		return float1(math.Sin)
	case "COS":
		return float1(math.Cos)
	case "FLOOR":
		return float1(math.Floor)
	case "CEIL", "CEILING":
		return float1(math.Ceil)

	case "POW", "POWER":
		if err := need(2, 2); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Null, err
			}
			if vals[0].IsNull() || vals[1].IsNull() {
				return Null, nil
			}
			a, err := vals[0].AsFloat()
			if err != nil {
				return Null, err
			}
			b, err := vals[1].AsFloat()
			if err != nil {
				return Null, err
			}
			return NewFloat(math.Pow(a, b)), nil
		}, nil

	case "ROUND":
		if err := need(1, 2); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Null, err
			}
			if vals[0].IsNull() {
				return Null, nil
			}
			x, err := vals[0].AsFloat()
			if err != nil {
				return Null, err
			}
			digits := int64(0)
			if len(vals) == 2 && !vals[1].IsNull() {
				digits, err = vals[1].AsInt()
				if err != nil {
					return Null, err
				}
			}
			scale := math.Pow(10, float64(digits))
			return NewFloat(math.Round(x*scale) / scale), nil
		}, nil

	case "SIGN":
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return Null, err
			}
			x, err := v.AsFloat()
			if err != nil {
				return Null, err
			}
			switch {
			case x > 0:
				return NewInt(1), nil
			case x < 0:
				return NewInt(-1), nil
			}
			return NewInt(0), nil
		}, nil

	case "MOD":
		if err := need(2, 2); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Null, err
			}
			return Arithmetic("%", vals[0], vals[1])
		}, nil

	case "LENGTH":
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return Null, err
			}
			return NewInt(int64(len(v.String()))), nil
		}, nil

	case "LOWER":
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return Null, err
			}
			return NewText(strings.ToLower(v.String())), nil
		}, nil

	case "UPPER":
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return Null, err
			}
			return NewText(strings.ToUpper(v.String())), nil
		}, nil

	case "SUBSTR", "SUBSTRING":
		if err := need(2, 3); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Null, err
			}
			if vals[0].IsNull() || vals[1].IsNull() {
				return Null, nil
			}
			s := vals[0].String()
			start, err := vals[1].AsInt()
			if err != nil {
				return Null, err
			}
			// SQL is 1-based.
			if start < 1 {
				start = 1
			}
			if start > int64(len(s)) {
				return NewText(""), nil
			}
			out := s[start-1:]
			if len(vals) == 3 && !vals[2].IsNull() {
				n, err := vals[2].AsInt()
				if err != nil {
					return Null, err
				}
				if n < 0 {
					n = 0
				}
				if n < int64(len(out)) {
					out = out[:n]
				}
			}
			return NewText(out), nil
		}, nil

	case "COALESCE":
		if err := need(1, -1); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			for _, a := range args {
				v, err := a(row)
				if err != nil {
					return Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return Null, nil
		}, nil

	case "NULLIF":
		if err := need(2, 2); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Null, err
			}
			if cmp, ok := CompareSQL(vals[0], vals[1]); ok && cmp == 0 {
				return Null, nil
			}
			return vals[0], nil
		}, nil

	case "IIF":
		if err := need(3, 3); err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			c, err := args[0](row)
			if err != nil {
				return Null, err
			}
			if b, known := c.Bool(); known && b {
				return args[1](row)
			}
			return args[2](row)
		}, nil
	}
	return nil, fmt.Errorf("sqlengine: unknown function %s", n.Name)
}

// aggState accumulates one aggregate over a group.
type aggState interface {
	add(v Value, present bool) error
	result() Value
}

// newAggState constructs the accumulator for an aggregate call.
// countStar aggregates receive present=true per row with v ignored.
func newAggState(name string, distinct bool) (aggState, error) {
	var base aggState
	switch name {
	case "COUNT":
		base = &countAgg{}
	case "SUM":
		base = &sumAgg{}
	case "TOTAL":
		base = &sumAgg{total: true}
	case "AVG":
		base = &avgAgg{}
	case "MIN":
		base = &minMaxAgg{min: true}
	case "MAX":
		base = &minMaxAgg{}
	default:
		return nil, fmt.Errorf("sqlengine: unknown aggregate %s", name)
	}
	if distinct {
		return &distinctAgg{inner: base, seen: make(map[string]bool)}, nil
	}
	return base, nil
}

// partialDumper is implemented by aggregate states whose accumulated
// value decomposes into mergeable partials (see aggregate.go's
// streaming spill path). partial appends the state's partial values to
// dst; the slot count must match partialWidth.
type partialDumper interface {
	partial(dst Row) Row
}

type countAgg struct{ n int64 }

func (a *countAgg) add(v Value, present bool) error {
	if present && !v.IsNull() {
		a.n++
	}
	return nil
}
func (a *countAgg) result() Value       { return NewInt(a.n) }
func (a *countAgg) partial(dst Row) Row { return append(dst, NewInt(a.n)) }

// sumAgg implements SUM (NULL on empty input) and TOTAL (0.0 on empty).
// Integer inputs keep integer arithmetic until a float appears, like
// SQLite.
type sumAgg struct {
	total   bool
	anyRow  bool
	isFloat bool
	i       int64
	f       float64
}

func (a *sumAgg) add(v Value, present bool) error {
	if !present || v.IsNull() {
		return nil
	}
	a.anyRow = true
	switch v.T {
	case TypeInt, TypeBool:
		if a.isFloat {
			a.f += float64(v.I)
		} else {
			a.i += v.I
		}
	case TypeFloat:
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += v.F
	default:
		return fmt.Errorf("sqlengine: SUM over non-numeric value %q", v.String())
	}
	return nil
}

// partial appends the running sum (NULL when no rows were added), which
// merges correctly through another sumAgg.
func (a *sumAgg) partial(dst Row) Row { return append(dst, a.result()) }

func (a *sumAgg) result() Value {
	if !a.anyRow {
		if a.total {
			return NewFloat(0)
		}
		return Null
	}
	if a.isFloat || a.total {
		if a.isFloat {
			return NewFloat(a.f)
		}
		return NewFloat(float64(a.i))
	}
	return NewInt(a.i)
}

type avgAgg struct {
	n int64
	f float64
}

func (a *avgAgg) add(v Value, present bool) error {
	if !present || v.IsNull() {
		return nil
	}
	x, err := v.AsFloat()
	if err != nil {
		return err
	}
	a.n++
	a.f += x
	return nil
}

func (a *avgAgg) result() Value {
	if a.n == 0 {
		return Null
	}
	return NewFloat(a.f / float64(a.n))
}

func (a *avgAgg) partial(dst Row) Row { return append(dst, NewFloat(a.f), NewInt(a.n)) }

type minMaxAgg struct {
	min   bool
	any   bool
	value Value
}

func (a *minMaxAgg) add(v Value, present bool) error {
	if !present || v.IsNull() {
		return nil
	}
	if !a.any {
		a.any = true
		a.value = v
		return nil
	}
	cmp := CompareTotal(v, a.value)
	if (a.min && cmp < 0) || (!a.min && cmp > 0) {
		a.value = v
	}
	return nil
}

func (a *minMaxAgg) result() Value {
	if !a.any {
		return Null
	}
	return a.value
}

func (a *minMaxAgg) partial(dst Row) Row { return append(dst, a.result()) }

// distinctAgg de-duplicates inputs before delegating.
type distinctAgg struct {
	inner aggState
	seen  map[string]bool
}

func (a *distinctAgg) add(v Value, present bool) error {
	if !present || v.IsNull() {
		return a.inner.add(v, present)
	}
	key := encodeValueKey(v)
	if a.seen[key] {
		return nil
	}
	a.seen[key] = true
	return a.inner.add(v, present)
}

func (a *distinctAgg) result() Value { return a.inner.result() }
