package sqlengine

import "fmt"

// Vectorized expression evaluation. A vecExpr evaluates an expression
// over a whole batch in one call, writing results indexed by physical
// row position; only positions named by the selection vector are
// computed (and therefore valid). Hot operators — column references,
// arithmetic, bitwise ops, comparisons, AND/OR — get specialized loops
// with inline integer/float fast paths, which removes the per-row
// closure dispatch of the interpreted evaluator. Everything else falls
// back to the row-at-a-time compiled expression applied per selected
// row, so the two evaluators always agree.
//
// Scratch discipline: each compiled node owns its output buffer and
// reuses it across batches, so steady-state evaluation does not
// allocate. A ColumnRef returns the batch's column directly (zero
// copy). Returned slices are read-only for the caller and valid until
// the node is evaluated again.
type vecExpr func(b *rowBatch, sel []int) (colVec, error)

// compileVec compiles e for vectorized evaluation against ctx's
// resolver.
func compileVec(e Expr, ctx *compileCtx) (vecExpr, error) {
	switch n := e.(type) {
	case *Literal:
		return constVec(n.Val), nil

	case *ParamRef:
		if n.Index >= len(ctx.params) {
			return nil, fmt.Errorf("sqlengine: statement has parameter %d but only %d values bound", n.Index+1, len(ctx.params))
		}
		return constVec(ctx.params[n.Index]), nil

	case *ColumnRef:
		idx, err := ctx.resolver.resolveColumn(n.Table, n.Name)
		if err != nil {
			return nil, err
		}
		return func(b *rowBatch, sel []int) (colVec, error) {
			if idx >= len(b.cols) {
				return nil, fmt.Errorf("sqlengine: internal: column slot %d out of range %d", idx, len(b.cols))
			}
			return b.cols[idx], nil
		}, nil

	case *UnaryExpr:
		return compileVecUnary(n, ctx)

	case *BinaryExpr:
		return compileVecBinary(n, ctx)

	case *IsNullExpr:
		x, err := compileVec(n.X, ctx)
		if err != nil {
			return nil, err
		}
		not := n.Not
		var out colVec
		return func(b *rowBatch, sel []int) (colVec, error) {
			xs, err := x(b, sel)
			if err != nil {
				return nil, err
			}
			out = growCol(out, b.n)
			for _, i := range sel {
				out[i] = NewBool(xs[i].IsNull() != not)
			}
			return out, nil
		}, nil
	}

	// Everything else (function calls, CASE, IN, BETWEEN, CAST, …)
	// reuses the row-at-a-time compiler per selected row.
	return compileVecFallback(e, ctx)
}

// compileVecAll compiles a list of expressions.
func compileVecAll(exprs []Expr, ctx *compileCtx) ([]vecExpr, error) {
	out := make([]vecExpr, len(exprs))
	for i, e := range exprs {
		c, err := compileVec(e, ctx)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// constVec returns a node producing a constant column.
func constVec(v Value) vecExpr {
	var out colVec
	return func(b *rowBatch, sel []int) (colVec, error) {
		if len(out) < b.n {
			for len(out) < b.n {
				out = append(out, v)
			}
		}
		return out, nil
	}
}

// compileVecFallback wraps the interpreted evaluator: gather each
// selected row into a scratch buffer and evaluate row-wise.
func compileVecFallback(e Expr, ctx *compileCtx) (vecExpr, error) {
	rowC, err := compileExpr(e, ctx)
	if err != nil {
		return nil, err
	}
	var out colVec
	var rowBuf Row
	return func(b *rowBatch, sel []int) (colVec, error) {
		out = growCol(out, b.n)
		if len(rowBuf) != len(b.cols) {
			rowBuf = make(Row, len(b.cols))
		}
		for _, i := range sel {
			b.gather(i, rowBuf)
			v, err := rowC(rowBuf)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}, nil
}

// growCol resizes a scratch column to hold n physical positions.
func growCol(c colVec, n int) colVec {
	if cap(c) < n {
		return make(colVec, n, max(n, batchSize))
	}
	return c[:n]
}

func compileVecUnary(n *UnaryExpr, ctx *compileCtx) (vecExpr, error) {
	x, err := compileVec(n.X, ctx)
	if err != nil {
		return nil, err
	}
	var out colVec
	switch n.Op {
	case "-":
		return func(b *rowBatch, sel []int) (colVec, error) {
			xs, err := x(b, sel)
			if err != nil {
				return nil, err
			}
			out = growCol(out, b.n)
			for _, i := range sel {
				v := xs[i]
				switch v.T {
				case TypeInt:
					out[i] = Value{T: TypeInt, I: -v.I}
				case TypeFloat:
					out[i] = Value{T: TypeFloat, F: -v.F}
				default:
					nv, err := Negate(v)
					if err != nil {
						return nil, err
					}
					out[i] = nv
				}
			}
			return out, nil
		}, nil
	case "~":
		return func(b *rowBatch, sel []int) (colVec, error) {
			xs, err := x(b, sel)
			if err != nil {
				return nil, err
			}
			out = growCol(out, b.n)
			for _, i := range sel {
				v := xs[i]
				if v.T == TypeInt {
					out[i] = Value{T: TypeInt, I: ^v.I}
					continue
				}
				nv, err := BitwiseNot(v)
				if err != nil {
					return nil, err
				}
				out[i] = nv
			}
			return out, nil
		}, nil
	case "NOT":
		return func(b *rowBatch, sel []int) (colVec, error) {
			xs, err := x(b, sel)
			if err != nil {
				return nil, err
			}
			out = growCol(out, b.n)
			for _, i := range sel {
				bv, known := xs[i].Bool()
				if !known {
					out[i] = Null
				} else {
					out[i] = NewBool(!bv)
				}
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("sqlengine: unknown unary operator %q", n.Op)
}

func compileVecBinary(n *BinaryExpr, ctx *compileCtx) (vecExpr, error) {
	switch n.Op {
	case "AND", "OR":
		return compileVecLogical(n, ctx)
	}
	l, err := compileVec(n.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := compileVec(n.R, ctx)
	if err != nil {
		return nil, err
	}
	op := n.Op
	var out colVec

	eval := func(b *rowBatch, sel []int) (colVec, colVec, error) {
		ls, err := l(b, sel)
		if err != nil {
			return nil, nil, err
		}
		rs, err := r(b, sel)
		if err != nil {
			return nil, nil, err
		}
		out = growCol(out, b.n)
		return ls, rs, nil
	}

	switch op {
	case "+", "-", "*", "/", "%":
		return func(b *rowBatch, sel []int) (colVec, error) {
			ls, rs, err := eval(b, sel)
			if err != nil {
				return nil, err
			}
			for _, i := range sel {
				a, c := ls[i], rs[i]
				if a.T == TypeInt && c.T == TypeInt {
					switch op {
					case "+":
						out[i] = Value{T: TypeInt, I: a.I + c.I}
						continue
					case "-":
						out[i] = Value{T: TypeInt, I: a.I - c.I}
						continue
					case "*":
						out[i] = Value{T: TypeInt, I: a.I * c.I}
						continue
					}
				} else if a.T == TypeFloat && c.T == TypeFloat {
					switch op {
					case "+":
						out[i] = Value{T: TypeFloat, F: a.F + c.F}
						continue
					case "-":
						out[i] = Value{T: TypeFloat, F: a.F - c.F}
						continue
					case "*":
						out[i] = Value{T: TypeFloat, F: a.F * c.F}
						continue
					}
				}
				v, err := Arithmetic(op, a, c)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}, nil

	case "&", "|", "<<", ">>":
		return func(b *rowBatch, sel []int) (colVec, error) {
			ls, rs, err := eval(b, sel)
			if err != nil {
				return nil, err
			}
			for _, i := range sel {
				a, c := ls[i], rs[i]
				if a.T == TypeInt && c.T == TypeInt {
					switch op {
					case "&":
						out[i] = Value{T: TypeInt, I: a.I & c.I}
						continue
					case "|":
						out[i] = Value{T: TypeInt, I: a.I | c.I}
						continue
					}
				}
				v, err := Bitwise(op, a, c)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}, nil

	case "=", "==", "!=", "<>", "<", "<=", ">", ">=":
		return func(b *rowBatch, sel []int) (colVec, error) {
			ls, rs, err := eval(b, sel)
			if err != nil {
				return nil, err
			}
			for _, i := range sel {
				a, c := ls[i], rs[i]
				var cmp int
				if a.T == TypeInt && c.T == TypeInt {
					switch {
					case a.I < c.I:
						cmp = -1
					case a.I > c.I:
						cmp = 1
					}
				} else if a.T == TypeFloat && c.T == TypeFloat {
					switch {
					case a.F < c.F:
						cmp = -1
					case a.F > c.F:
						cmp = 1
					}
				} else {
					var ok bool
					cmp, ok = CompareSQL(a, c)
					if !ok {
						out[i] = Null
						continue
					}
				}
				var res bool
				switch op {
				case "=", "==":
					res = cmp == 0
				case "!=", "<>":
					res = cmp != 0
				case "<":
					res = cmp < 0
				case "<=":
					res = cmp <= 0
				case ">":
					res = cmp > 0
				case ">=":
					res = cmp >= 0
				}
				out[i] = NewBool(res)
			}
			return out, nil
		}, nil

	case "||":
		return func(b *rowBatch, sel []int) (colVec, error) {
			ls, rs, err := eval(b, sel)
			if err != nil {
				return nil, err
			}
			for _, i := range sel {
				a, c := ls[i], rs[i]
				if a.IsNull() || c.IsNull() {
					out[i] = Null
					continue
				}
				out[i] = NewText(a.String() + c.String())
			}
			return out, nil
		}, nil

	case "LIKE":
		return func(b *rowBatch, sel []int) (colVec, error) {
			ls, rs, err := eval(b, sel)
			if err != nil {
				return nil, err
			}
			for _, i := range sel {
				a, c := ls[i], rs[i]
				if a.IsNull() || c.IsNull() {
					out[i] = Null
					continue
				}
				out[i] = NewBool(likeMatch(a.String(), c.String()))
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("sqlengine: unknown binary operator %q", n.Op)
}

// compileVecLogical implements AND/OR with lazy right-hand evaluation:
// the right operand is evaluated only on the sub-selection of rows where
// the left side did not already decide the result, matching the
// short-circuit semantics of the row evaluator.
func compileVecLogical(n *BinaryExpr, ctx *compileCtx) (vecExpr, error) {
	l, err := compileVec(n.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := compileVec(n.R, ctx)
	if err != nil {
		return nil, err
	}
	isAnd := n.Op == "AND"
	var out colVec
	var subsel []int
	return func(b *rowBatch, sel []int) (colVec, error) {
		ls, err := l(b, sel)
		if err != nil {
			return nil, err
		}
		out = growCol(out, b.n)
		subsel = subsel[:0]
		for _, i := range sel {
			lb, lknown := ls[i].Bool()
			if lknown && lb != isAnd {
				// AND with a false left / OR with a true left is decided.
				out[i] = NewBool(!isAnd)
				continue
			}
			subsel = append(subsel, i)
		}
		if len(subsel) == 0 {
			return out, nil
		}
		rs, err := r(b, subsel)
		if err != nil {
			return nil, err
		}
		for _, i := range subsel {
			_, lknown := ls[i].Bool()
			rb, rknown := rs[i].Bool()
			if rknown && rb != isAnd {
				out[i] = NewBool(!isAnd)
				continue
			}
			if !lknown || !rknown {
				out[i] = Null
				continue
			}
			out[i] = NewBool(isAnd)
		}
		return out, nil
	}, nil
}
