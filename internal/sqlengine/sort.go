package sqlengine

import (
	"container/heap"
	"sort"
)

// sortSpec is one ORDER BY key.
type sortSpec struct {
	expr Expr
	desc bool
}

// sortNode sorts its input. It consumes batches and accumulates rows in
// memory under the budget; on overflow it writes sorted runs to
// spillable stores — column runs under the default columnar layout —
// and merges them with a loser-tree style heap (external merge sort).
// When every key is a bare column reference — the common case after
// projection — rows are buffered as-is and compared by column index;
// otherwise the keys are evaluated vectorized and prepended to each
// buffered row. The sorted output is row-oriented internally (sorting
// permutes rows, so there is no column locality to preserve) and
// re-batched through the row adapter — the engine's one remaining
// row-oriented internal.
type sortNode struct {
	child planNode
	keys  []sortSpec
	est   *nodeEst
}

func (n *sortNode) schema() planSchema { return n.child.schema() }

// rowCmp orders buffered (possibly key-prefixed) rows.
type rowCmp func(a, b Row) int

// prefixCmp compares the first nk values (the evaluated keys).
func prefixCmp(nk int, descs []bool) rowCmp {
	return func(a, b Row) int {
		for i := 0; i < nk; i++ {
			c := CompareTotal(a[i], b[i])
			if c != 0 {
				if descs[i] {
					return -c
				}
				return c
			}
		}
		return 0
	}
}

// indexCmp compares by column position, for key-less buffered rows.
func indexCmp(idx []int, descs []bool) rowCmp {
	return func(a, b Row) int {
		for i, k := range idx {
			c := CompareTotal(a[k], b[k])
			if c != 0 {
				if descs[i] {
					return -c
				}
				return c
			}
		}
		return 0
	}
}

// simpleKeyIdx resolves every sort key to a column index, or ok=false
// when some key is a computed expression.
func simpleKeyIdx(keys []sortSpec, schema planSchema) ([]int, bool) {
	idx := make([]int, len(keys))
	for i, k := range keys {
		cr, isCol := k.expr.(*ColumnRef)
		if !isCol {
			return nil, false
		}
		j, err := schema.resolveColumn(cr.Table, cr.Name)
		if err != nil {
			return nil, false
		}
		idx[i] = j
	}
	return idx, true
}

func (n *sortNode) open(ctx *execCtx) (batchIter, error) {
	schema := n.child.schema()
	width := len(schema)
	descs := make([]bool, len(n.keys))
	for i, k := range n.keys {
		descs[i] = k.desc
	}

	var compiled []vecExpr
	var cmp rowCmp
	nk := 0
	if idx, ok := simpleKeyIdx(n.keys, schema); ok {
		cmp = indexCmp(idx, descs)
	} else {
		keyExprs := make([]Expr, len(n.keys))
		for i, k := range n.keys {
			keyExprs[i] = k.expr
		}
		var err error
		compiled, err = ctx.compileVecAll(keyExprs, schema)
		if err != nil {
			return nil, err
		}
		nk = len(compiled)
		cmp = prefixCmp(nk, descs)
	}

	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	defer child.Close()

	budget := ctx.env.budget

	var buf []Row // each row is [keys..., original...] (keys empty on the fast path)
	var bufBytes int64
	var runs []tableStore
	failAll := func(err error) (batchIter, error) {
		budget.release(bufBytes)
		releaseStores(runs)
		return nil, err
	}

	sortBuf := func() {
		sort.SliceStable(buf, func(a, b int) bool { return cmp(buf[a], buf[b]) < 0 })
	}
	flushRun := func() error {
		sortBuf()
		run := ctx.env.newStore()
		for _, r := range buf {
			if err := run.Append(r); err != nil {
				run.Release()
				return err
			}
		}
		if err := run.Freeze(); err != nil {
			run.Release()
			return err
		}
		runs = append(runs, run)
		budget.release(bufBytes)
		buf = buf[:0]
		bufBytes = 0
		return nil
	}

	keyCols := make([]colVec, nk)
	for {
		if err := ctx.cancelled(); err != nil {
			return failAll(err)
		}
		b, err := child.NextBatch()
		if err != nil {
			return failAll(err)
		}
		if b == nil {
			break
		}
		sel := b.selection()
		for i, c := range compiled {
			col, err := c(b, sel)
			if err != nil {
				return failAll(err)
			}
			keyCols[i] = col
		}
		for _, pos := range sel {
			keyed := make(Row, nk+width)
			for i := 0; i < nk; i++ {
				keyed[i] = keyCols[i][pos]
			}
			b.gather(pos, keyed[nk:])
			need := rowBytes(keyed)
			if !budget.tryReserve(need) {
				// Claim the working floor before breaking a run so runs
				// stay reasonably sized even when tables hold the budget.
				if bufBytes+need <= ctx.env.workingFloor {
					budget.reserveForce(need)
				} else {
					if !ctx.env.spillEnabled {
						return failAll(errBudget)
					}
					if err := flushRun(); err != nil {
						return failAll(err)
					}
					budget.reserveForce(need)
				}
			}
			bufBytes += need
			buf = append(buf, keyed)
		}
	}

	if len(runs) == 0 {
		sortBuf()
		return newRowAdapter(&sortedBufIter{buf: buf, nk: nk, budget: budget, bytes: bufBytes}, width), nil
	}
	if len(buf) > 0 {
		if err := flushRun(); err != nil {
			return failAll(err)
		}
	}
	m := &mergeIter{nk: nk, cmp: cmp, runs: runs}
	if err := m.init(); err != nil {
		return failAll(err)
	}
	return newRowAdapter(m, width), nil
}

// sortedBufIter streams an in-memory sorted buffer, stripping key
// prefixes.
type sortedBufIter struct {
	buf    []Row
	pos    int
	nk     int
	budget *MemBudget
	bytes  int64
}

func (it *sortedBufIter) Next() (Row, bool, error) {
	if it.pos >= len(it.buf) {
		return nil, false, nil
	}
	r := it.buf[it.pos]
	it.pos++
	return r[it.nk:], true, nil
}

func (it *sortedBufIter) Close() {
	if it.buf != nil {
		it.budget.release(it.bytes)
		it.buf = nil
	}
}

// mergeIter k-way merges sorted runs, reading each through its store's
// row cursor.
type mergeIter struct {
	nk   int
	cmp  rowCmp
	runs []tableStore
	heap mergeHeap
}

type mergeEntry struct {
	row Row
	src rowCursor
	seq int // run index; breaks ties to keep the merge stable
}

type mergeHeap struct {
	entries []mergeEntry
	cmp     rowCmp
}

func (h *mergeHeap) Len() int { return len(h.entries) }
func (h *mergeHeap) Less(a, b int) bool {
	c := h.cmp(h.entries[a].row, h.entries[b].row)
	if c != 0 {
		return c < 0
	}
	return h.entries[a].seq < h.entries[b].seq
}
func (h *mergeHeap) Swap(a, b int) { h.entries[a], h.entries[b] = h.entries[b], h.entries[a] }
func (h *mergeHeap) Push(x any)    { h.entries = append(h.entries, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries = h.entries[:n-1]
	return e
}

func (m *mergeIter) init() error {
	m.heap = mergeHeap{cmp: m.cmp}
	for i, run := range m.runs {
		it, err := run.Cursor()
		if err != nil {
			return err
		}
		row, ok, err := it.Next()
		if err != nil {
			return err
		}
		if ok {
			m.heap.entries = append(m.heap.entries, mergeEntry{row: row, src: it, seq: i})
		}
	}
	heap.Init(&m.heap)
	return nil
}

func (m *mergeIter) Next() (Row, bool, error) {
	if m.heap.Len() == 0 {
		return nil, false, nil
	}
	e := heap.Pop(&m.heap).(mergeEntry)
	out := e.row[m.nk:]
	next, ok, err := e.src.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		heap.Push(&m.heap, mergeEntry{row: next, src: e.src, seq: e.seq})
	}
	return out, true, nil
}

func (m *mergeIter) Close() {
	releaseStores(m.runs)
	m.runs = nil
}
