package sqlengine

import (
	"container/heap"
	"sort"
)

// sortSpec is one ORDER BY key.
type sortSpec struct {
	expr Expr
	desc bool
}

// sortNode sorts its input. It accumulates rows in memory under the
// budget; on overflow it writes sorted runs to spillable stores and
// merges them with a loser-tree style heap (external merge sort).
type sortNode struct {
	child planNode
	keys  []sortSpec
}

func (n *sortNode) schema() planSchema { return n.child.schema() }

func (n *sortNode) open(ctx *execCtx) (rowIter, error) {
	keyExprs := make([]Expr, len(n.keys))
	for i, k := range n.keys {
		keyExprs[i] = k.expr
	}
	compiled, err := compileAll(ctx, keyExprs, n.child.schema())
	if err != nil {
		return nil, err
	}
	descs := make([]bool, len(n.keys))
	for i, k := range n.keys {
		descs[i] = k.desc
	}

	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	defer child.Close()

	budget := ctx.env.budget
	nk := len(compiled)

	var buf []Row // each row is [keys..., original...]
	var bufBytes int64
	var runs []*RowStore
	failAll := func(err error) (rowIter, error) {
		budget.release(bufBytes)
		releaseStores(runs)
		return nil, err
	}

	sortBuf := func() {
		sort.SliceStable(buf, func(a, b int) bool {
			return compareKeyedRows(buf[a], buf[b], nk, descs) < 0
		})
	}
	flushRun := func() error {
		sortBuf()
		run := newRowStore(ctx.env)
		for _, r := range buf {
			if err := run.Append(r); err != nil {
				run.Release()
				return err
			}
		}
		if err := run.Freeze(); err != nil {
			run.Release()
			return err
		}
		runs = append(runs, run)
		budget.release(bufBytes)
		buf = buf[:0]
		bufBytes = 0
		return nil
	}

	for {
		row, ok, err := child.Next()
		if err != nil {
			return failAll(err)
		}
		if !ok {
			break
		}
		keyed := make(Row, nk+len(row))
		for i, c := range compiled {
			v, err := c(row)
			if err != nil {
				return failAll(err)
			}
			keyed[i] = v
		}
		copy(keyed[nk:], row)
		need := rowBytes(keyed)
		if !budget.tryReserve(need) {
			// Claim the working floor before breaking a run so runs
			// stay reasonably sized even when tables hold the budget.
			if bufBytes+need <= ctx.env.workingFloor {
				budget.reserveForce(need)
			} else {
				if !ctx.env.spillEnabled {
					return failAll(errBudget)
				}
				if err := flushRun(); err != nil {
					return failAll(err)
				}
				budget.reserveForce(need)
			}
		}
		bufBytes += need
		buf = append(buf, keyed)
	}

	if len(runs) == 0 {
		sortBuf()
		return &sortedBufIter{buf: buf, nk: nk, budget: budget, bytes: bufBytes}, nil
	}
	if len(buf) > 0 {
		if err := flushRun(); err != nil {
			return failAll(err)
		}
	}
	m := &mergeIter{nk: nk, descs: descs, runs: runs}
	if err := m.init(); err != nil {
		return failAll(err)
	}
	return m, nil
}

// compareKeyedRows compares the key prefixes of two keyed rows.
func compareKeyedRows(a, b Row, nk int, descs []bool) int {
	for i := 0; i < nk; i++ {
		c := CompareTotal(a[i], b[i])
		if c != 0 {
			if descs[i] {
				return -c
			}
			return c
		}
	}
	return 0
}

// sortedBufIter streams an in-memory sorted buffer, stripping key
// prefixes.
type sortedBufIter struct {
	buf    []Row
	pos    int
	nk     int
	budget *memBudget
	bytes  int64
}

func (it *sortedBufIter) Next() (Row, bool, error) {
	if it.pos >= len(it.buf) {
		return nil, false, nil
	}
	r := it.buf[it.pos]
	it.pos++
	return r[it.nk:], true, nil
}

func (it *sortedBufIter) Close() {
	if it.buf != nil {
		it.budget.release(it.bytes)
		it.buf = nil
	}
}

// mergeIter k-way merges sorted runs.
type mergeIter struct {
	nk    int
	descs []bool
	runs  []*RowStore
	heap  mergeHeap
}

type mergeEntry struct {
	row Row
	src *RowIterator
	seq int // run index; breaks ties to keep the merge stable
}

type mergeHeap struct {
	entries []mergeEntry
	nk      int
	descs   []bool
}

func (h *mergeHeap) Len() int { return len(h.entries) }
func (h *mergeHeap) Less(a, b int) bool {
	c := compareKeyedRows(h.entries[a].row, h.entries[b].row, h.nk, h.descs)
	if c != 0 {
		return c < 0
	}
	return h.entries[a].seq < h.entries[b].seq
}
func (h *mergeHeap) Swap(a, b int) { h.entries[a], h.entries[b] = h.entries[b], h.entries[a] }
func (h *mergeHeap) Push(x any)    { h.entries = append(h.entries, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries = h.entries[:n-1]
	return e
}

func (m *mergeIter) init() error {
	m.heap = mergeHeap{nk: m.nk, descs: m.descs}
	for i, run := range m.runs {
		it, err := run.Iterator()
		if err != nil {
			return err
		}
		row, ok, err := it.Next()
		if err != nil {
			return err
		}
		if ok {
			m.heap.entries = append(m.heap.entries, mergeEntry{row: row, src: it, seq: i})
		}
	}
	heap.Init(&m.heap)
	return nil
}

func (m *mergeIter) Next() (Row, bool, error) {
	if m.heap.Len() == 0 {
		return nil, false, nil
	}
	e := heap.Pop(&m.heap).(mergeEntry)
	out := e.row[m.nk:]
	next, ok, err := e.src.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		heap.Push(&m.heap, mergeEntry{row: next, src: e.src, seq: e.seq})
	}
	return out, true, nil
}

func (m *mergeIter) Close() {
	releaseStores(m.runs)
	m.runs = nil
}
