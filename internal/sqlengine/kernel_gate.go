package sqlengine

import (
	"sync"
	"sync/atomic"
)

// Execution of a compiled gate-stage kernel: bind the program to the
// current ColStore vectors, then run one fused
// scan⋈join⋈agg⋈project loop (see the determinism contract in
// kernel.go).

// kGateRow is one gate-table row in the bucket table: the output-index
// column plus the four float factors of the two SUM products, gathered
// once at bind time.
type kGateRow struct {
	out                int64
	g0a, g0b, g1a, g1b float64
}

// boundGate is a program bound to concrete table vectors for one
// execution. Rebinding is cheap (the gate table is a 2×2/4×4 matrix),
// which is what lets a sweep reuse one cached program across thousands
// of numeric rebinds.
type boundGate struct {
	prog *kernelProg
	rows int
	// sKey is the state amplitude-index vector; s0a..s1b the state
	// float vectors of the SUM factors (slices may alias). When the
	// index column is RLE-encoded, sRuns holds its runs instead and the
	// fused loop iterates run-at-a-time (sKey stays nil).
	sKey               []int64
	sRuns              []intRun
	s0a, s0b, s1a, s1b []float64
	// buckets replaces the hash join: build-key -> gate rows in
	// gate-table order, exactly the streaming join's insertion order.
	buckets map[int64][]kGateRow
	// morsel selects the two-phase partitioned accumulation, mirroring
	// the engine's own mode choice (the morsel aggregation engages
	// whenever the state scan splits into two or more morsels,
	// regardless of the worker count).
	morsel bool
	// denseHi, when >= 0, is a proven upper bound on every group key:
	// the serial path then uses a dense array accumulator instead of a
	// hash table.
	denseHi   int64
	groupHint int64
	empty     bool
	// runsSkipped counts RLE run segments whose probe key missed every
	// bucket — whole segments of zero contribution skipped without
	// touching the float vectors (kernelExecStat, EXPLAIN ANALYZE).
	runsSkipped atomic.Int64
}

// denseCap bounds the dense accumulator's position array (int32
// entries; 1<<22 keys = 16 MB of scratch).
const denseCap = 1 << 22

// bindGateStage binds a compiled program to the scans' current stores,
// running the data-dependent checks the matcher cannot do statically.
func bindGateStage(env *storageEnv, k *gateKernel) (*boundGate, string) {
	prog := k.prog
	state, ok := k.state.store.(*ColStore)
	gate, ok2 := k.gate.store.(*ColStore)
	if !ok || !ok2 {
		return nil, kfRowLayout
	}
	if err := state.Freeze(); err != nil {
		return nil, kfSpilled
	}
	if err := gate.Freeze(); err != nil {
		return nil, kfSpilled
	}
	if state.Spilled() || gate.Spilled() {
		return nil, kfSpilled
	}
	bk := &boundGate{prog: prog, rows: state.rows, groupHint: k.agg.groupHint, denseHi: -1}
	if state.rows == 0 || gate.rows == 0 {
		// A grouped aggregation of an empty join emits no rows; nothing
		// to check or bind.
		bk.empty = true
		return bk, ""
	}
	colAt := func(cs *ColStore, idx int) *column {
		if idx < 0 || idx >= len(cs.cols) {
			return nil
		}
		return &cs.cols[idx]
	}
	// Encoded columns bind too: dictionary and RLE int vectors (and
	// sparse float vectors) are decoded into fresh scratch once per
	// bind, so the fused loop keeps its plain-vector inner body — except
	// the state index column, whose RLE runs the loop iterates directly.
	intVec := func(cs *ColStore, idx int) []int64 {
		c := colAt(cs, idx)
		if c == nil || len(c.nulls) != 0 {
			return nil
		}
		switch c.kind {
		case colInt:
			return c.ints
		case colIntRLE:
			out := make([]int64, cs.rows)
			pos := 0
			for _, r := range c.runs {
				for ; pos < int(r.end); pos++ {
					out[pos] = r.v
				}
			}
			env.storageCtrs.bumpKernelEncBind()
			return out
		case colIntDict:
			out := make([]int64, cs.rows)
			for i, code := range c.codes {
				out[i] = c.dict[code]
			}
			env.storageCtrs.bumpKernelEncBind()
			return out
		}
		return nil
	}
	floatVec := func(cs *ColStore, idx int) []float64 {
		c := colAt(cs, idx)
		if c == nil || len(c.nulls) != 0 {
			return nil
		}
		switch c.kind {
		case colFloat:
			return c.floats
		case colFloatSparse:
			out := make([]float64, cs.rows)
			for i, p := range c.spos {
				out[p] = c.svals[i]
			}
			env.storageCtrs.bumpKernelEncBind()
			return out
		}
		return nil
	}
	if c := colAt(state, prog.sCol); c != nil && c.kind == colIntRLE && len(c.nulls) == 0 {
		bk.sRuns = c.runs
		env.storageCtrs.bumpKernelEncBind()
	} else {
		bk.sKey = intVec(state, prog.sCol)
	}
	bk.s0a = floatVec(state, prog.s0a)
	bk.s0b = floatVec(state, prog.s0b)
	bk.s1a = floatVec(state, prog.s1a)
	bk.s1b = floatVec(state, prog.s1b)
	gIn := intVec(gate, prog.gIn)
	g0a := floatVec(gate, prog.g0a)
	g0b := floatVec(gate, prog.g0b)
	g1a := floatVec(gate, prog.g1a)
	g1b := floatVec(gate, prog.g1b)
	var gOut []int64
	if prog.gOut >= 0 {
		gOut = intVec(gate, prog.gOut)
		if gOut == nil {
			return nil, kfColumnTypes
		}
	}
	if (bk.sKey == nil && bk.sRuns == nil) || bk.s0a == nil || bk.s0b == nil || bk.s1a == nil || bk.s1b == nil ||
		gIn == nil || g0a == nil || g0b == nil || g1a == nil || g1b == nil {
		return nil, kfColumnTypes
	}
	bk.buckets = make(map[int64][]kGateRow, gate.rows)
	for r := 0; r < gate.rows; r++ {
		row := kGateRow{g0a: g0a[r], g0b: g0b[r], g1a: g1a[r], g1b: g1b[r]}
		if gOut != nil {
			row.out = gOut[r]
		}
		bk.buckets[gIn[r]] = append(bk.buckets[gIn[r]], row)
	}
	bk.morsel = state.morselCount() >= minParallelMorsels
	if !bk.morsel && prog.gOutFn != nil {
		bk.denseHi = denseBound(state, prog, gOut)
	}
	return bk, ""
}

// denseBound proves an upper bound on every group key of the
// mask-merge form (s & mask) | f(out), or returns -1. For s ≥ 0 the
// masked half is ⊆ the bits of s, so pow2mask(max s) covers it; OR-ing
// the bits of every gate row's f(out) covers the rest. Requires fresh
// exact statistics on the state index column (satellite of this tier:
// CTAS/INSERT..SELECT materialization now collects them incrementally).
func denseBound(state *ColStore, prog *kernelProg, gOut []int64) int64 {
	ts := storeStats(state)
	if ts == nil || ts.rows != state.Len() {
		return -1
	}
	cs := ts.col(prog.sCol)
	if cs == nil || !cs.intSeen || cs.intMin < 0 || cs.nulls != 0 {
		return -1
	}
	hi := pow2mask(cs.intMax)
	if hi < 0 {
		return -1
	}
	if gOut == nil {
		v := prog.gOutFn(0, 0)
		if v < 0 {
			return -1
		}
		hi |= v
	} else {
		for _, out := range gOut {
			v := prog.gOutFn(0, out)
			if v < 0 {
				return -1
			}
			hi |= v
		}
	}
	if hi >= denseCap {
		return -1
	}
	return hi
}

// pow2mask returns the smallest 2^k - 1 covering x (x ≥ 0), or -1.
func pow2mask(x int64) int64 {
	if x < 0 {
		return -1
	}
	m := int64(1)
	for m-1 < x {
		m <<= 1
		if m <= 0 {
			return -1
		}
	}
	return m - 1
}

// kAcc is the kernel's group accumulator: group keys and the two sums
// in first-seen order (the engine's emission order), indexed either
// densely by key or through an open-addressed int64 hash.
type kAcc struct {
	dense bool
	// pos maps key (dense) or probe slot (hashed) to group index + 1.
	pos  []int32
	mask uint64
	keys []int64
	r, i []float64
}

func newKAcc(dense bool, denseHi, hint int64) *kAcc {
	if dense {
		return &kAcc{dense: true, pos: make([]int32, denseHi+1)}
	}
	n := 1024
	for int64(n) < hint*2 && n < 1<<21 {
		n <<= 1
	}
	return &kAcc{pos: make([]int32, n), mask: uint64(n - 1)}
}

// slot returns the group index for a key, appending a fresh zeroed
// group on first sight. Accumulation always starts from 0.0: sumAgg
// seeds its float accumulator with float64(0) before the first add, in
// both the streaming and the merge phase.
func (a *kAcc) slot(key int64) int {
	if a.dense {
		if p := a.pos[key]; p != 0 {
			return int(p) - 1
		}
		a.keys = append(a.keys, key)
		a.r = append(a.r, 0)
		a.i = append(a.i, 0)
		a.pos[key] = int32(len(a.keys))
		return len(a.keys) - 1
	}
	if uint64(len(a.keys))*4 >= uint64(len(a.pos))*3 {
		a.grow()
	}
	h := mix64(uint64(key), 0) & a.mask
	for {
		p := a.pos[h]
		if p == 0 {
			a.keys = append(a.keys, key)
			a.r = append(a.r, 0)
			a.i = append(a.i, 0)
			a.pos[h] = int32(len(a.keys))
			return len(a.keys) - 1
		}
		if a.keys[p-1] == key {
			return int(p) - 1
		}
		h = (h + 1) & a.mask
	}
}

func (a *kAcc) grow() {
	n := len(a.pos) * 2
	a.pos = make([]int32, n)
	a.mask = uint64(n - 1)
	for idx, key := range a.keys {
		h := mix64(uint64(key), 0) & a.mask
		for a.pos[h] != 0 {
			h = (h + 1) & a.mask
		}
		a.pos[h] = int32(idx + 1)
	}
}

// scanRange runs the fused loop over state rows [lo, hi): probe the
// gate buckets with the input index, and for every matching gate row
// accumulate the two complex products into the target group. The
// floating-point schedule is the interpreted engine's exactly: each
// product rounds once (the explicit float64 conversions forbid FMA
// contraction), the pair combines once, the accumulate rounds once.
func (bk *boundGate) scanRange(lo, hi int, acc *kAcc) {
	if bk.sRuns != nil {
		bk.scanRangeRuns(lo, hi, acc)
		return
	}
	prog := bk.prog
	for row := lo; row < hi; row++ {
		s := bk.sKey[row]
		bucket := bk.buckets[prog.inFn(s, 0)]
		for bi := range bucket {
			g := &bucket[bi]
			idx := acc.slot(prog.outFn(s, g.out))
			p0 := float64(bk.s0a[row] * g.g0a)
			p1 := float64(bk.s0b[row] * g.g0b)
			if prog.sub0 {
				acc.r[idx] += p0 - p1
			} else {
				acc.r[idx] += p0 + p1
			}
			q0 := float64(bk.s1a[row] * g.g1a)
			q1 := float64(bk.s1b[row] * g.g1b)
			if prog.sub1 {
				acc.i[idx] += q0 - q1
			} else {
				acc.i[idx] += q0 + q1
			}
		}
	}
}

// scanRangeRuns is scanRange over an RLE-encoded state index column:
// the bucket probe and the group-slot resolution hoist out of the row
// loop, once per run segment instead of once per row. The accumulation
// schedule is unchanged bit for bit — slots are resolved in bucket
// order (exactly what the segment's first row would have done; indices
// stay stable across accumulator growth) and the adds still run
// row-outer, bucket-inner in ascending row order. Runs whose input
// index misses every gate bucket skip the whole segment, which is the
// operate-on-encoded fast path for zero-padded amplitude tables.
func (bk *boundGate) scanRangeRuns(lo, hi int, acc *kAcc) {
	prog := bk.prog
	var idxs [4]int
	ri := runSearch(bk.sRuns, lo)
	for row := lo; row < hi; {
		r := bk.sRuns[ri]
		end := int(r.end)
		if end > hi {
			end = hi
		} else {
			ri++
		}
		s := r.v
		bucket := bk.buckets[prog.inFn(s, 0)]
		if len(bucket) == 0 {
			bk.runsSkipped.Add(1)
			row = end
			continue
		}
		slots := idxs[:0]
		if len(bucket) > len(idxs) {
			slots = make([]int, 0, len(bucket))
		}
		for bi := range bucket {
			slots = append(slots, acc.slot(prog.outFn(s, bucket[bi].out)))
		}
		for ; row < end; row++ {
			for bi := range bucket {
				g := &bucket[bi]
				idx := slots[bi]
				p0 := float64(bk.s0a[row] * g.g0a)
				p1 := float64(bk.s0b[row] * g.g0b)
				if prog.sub0 {
					acc.r[idx] += p0 - p1
				} else {
					acc.r[idx] += p0 + p1
				}
				q0 := float64(bk.s1a[row] * g.g1a)
				q1 := float64(bk.s1b[row] * g.g1b)
				if prog.sub1 {
					acc.i[idx] += q0 - q1
				} else {
					acc.i[idx] += q0 + q1
				}
			}
		}
	}
}

// runGateKernel executes a bound kernel and materializes its output
// store (the exact rows the interpreted core would have produced).
func runGateKernel(ctx *execCtx, k *gateKernel, bk *boundGate, collect bool) (tableStore, error) {
	out := ctx.env.newStore()
	if collect {
		attachStats(out)
	}
	if bk.groupHint > 0 {
		if h, ok := out.(rowCapacityHinter); ok {
			h.hintRows(bk.groupHint)
		}
	}
	em := &kEmitter{out: out, having: bk.prog.having, eps2: bk.prog.eps2}
	var err error
	if !bk.empty {
		if bk.morsel {
			err = bk.runMorsel(ctx, em)
		} else {
			err = bk.runSerial(ctx, em)
		}
	}
	if err == nil {
		err = em.flush()
	}
	if err == nil {
		err = out.Freeze()
	}
	if err != nil {
		out.Release()
		return nil, err
	}
	return out, nil
}

// kSink receives a kernel run's grouped output in emission order. Two
// implementations exist: kEmitter materializes rows into a store
// (applying the pruning HAVING), and chainBuf (kernel_chain.go) keeps
// them in memory as the next fused stage's input.
type kSink interface {
	emitAll(keys []int64, r, i []float64) error
}

// runSerial accumulates all state rows into one accumulator (the
// engine's single-morsel streaming aggregation) and emits groups in
// first-seen order.
func (bk *boundGate) runSerial(ctx *execCtx, em kSink) error {
	acc := newKAcc(bk.denseHi >= 0, bk.denseHi, bk.groupHint)
	for lo := 0; lo < bk.rows; lo += morselRows {
		if err := ctx.cancelled(); err != nil {
			return err
		}
		hi := lo + morselRows
		if hi > bk.rows {
			hi = bk.rows
		}
		bk.scanRange(lo, hi, acc)
	}
	return em.emitAll(acc.keys, acc.r, acc.i)
}

// kPartial is one morsel's partial sum for one group.
type kPartial struct {
	key  int64
	r, i float64
}

// runMorsel is the deterministic two-phase parallel accumulation,
// replicating parallel_agg.go's schedule bit for bit: phase 1
// accumulates each morsel independently and distributes its groups
// into aggPartitions hash partitions preserving first-seen order;
// phase 2 merges every partition across morsels in ascending morsel
// order, re-accumulating partials from a fresh 0.0; emission is
// partition-major. The schedule depends only on the data and the fixed
// morsel geometry — never on the worker count.
func (bk *boundGate) runMorsel(ctx *execCtx, em kSink) error {
	nm := (bk.rows + morselRows - 1) / morselRows
	parts := make([][aggPartitionsKernel][]kPartial, nm)
	workers := ctx.workers
	if workers < 1 {
		workers = 1
	}
	if workers > nm {
		workers = nm
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		abort    atomic.Bool
		next     atomic.Int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	hint := bk.groupHint
	if hint > morselRows {
		hint = morselRows
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !abort.Load() {
				m := int(next.Add(1)) - 1
				if m >= nm {
					return
				}
				if err := ctx.cancelled(); err != nil {
					fail(err)
					return
				}
				acc := newKAcc(false, -1, hint)
				lo := m * morselRows
				hi := lo + morselRows
				if hi > bk.rows {
					hi = bk.rows
				}
				bk.scanRange(lo, hi, acc)
				for idx, key := range acc.keys {
					p := hashPartitionInt(key, 0, aggPartitionsKernel)
					parts[m][p] = append(parts[m][p], kPartial{key: key, r: acc.r[idx], i: acc.i[idx]})
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	merged := make([]*kAcc, aggPartitionsKernel)
	var pnext atomic.Int64
	pworkers := ctx.workers
	if pworkers < 1 {
		pworkers = 1
	}
	if pworkers > aggPartitionsKernel {
		pworkers = aggPartitionsKernel
	}
	phint := bk.groupHint / aggPartitionsKernel
	for w := 0; w < pworkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !abort.Load() {
				p := int(pnext.Add(1)) - 1
				if p >= aggPartitionsKernel {
					return
				}
				if err := ctx.cancelled(); err != nil {
					fail(err)
					return
				}
				acc := newKAcc(false, -1, phint)
				for m := 0; m < nm; m++ {
					for _, pt := range parts[m][p] {
						idx := acc.slot(pt.key)
						acc.r[idx] += pt.r
						acc.i[idx] += pt.i
					}
				}
				merged[p] = acc
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for p := 0; p < aggPartitionsKernel; p++ {
		if err := em.emitAll(merged[p].keys, merged[p].r, merged[p].i); err != nil {
			return err
		}
	}
	return nil
}

// kEmitter buffers output rows into batches and applies the pruning
// HAVING exactly like the interpreted filter: one rounding per square,
// one for the sum, then the comparison (NaN fails it, dropping the
// row, as Value comparison does).
type kEmitter struct {
	out    tableStore
	having bool
	eps2   float64
	cols   [3]colVec
	n      int
}

func (e *kEmitter) add(key int64, r, i float64) error {
	if e.having {
		rr := float64(r * r)
		ii := float64(i * i)
		if !(rr+ii > e.eps2) {
			return nil
		}
	}
	e.cols[0] = append(e.cols[0], NewInt(key))
	e.cols[1] = append(e.cols[1], NewFloat(r))
	e.cols[2] = append(e.cols[2], NewFloat(i))
	e.n++
	if e.n >= batchSize {
		return e.flush()
	}
	return nil
}

func (e *kEmitter) emitAll(keys []int64, r, i []float64) error {
	for idx, key := range keys {
		if err := e.add(key, r[idx], i[idx]); err != nil {
			return err
		}
	}
	return nil
}

func (e *kEmitter) flush() error {
	if e.n == 0 {
		return nil
	}
	b := &rowBatch{cols: []colVec{e.cols[0], e.cols[1], e.cols[2]}, n: e.n}
	err := e.out.AppendBatch(b)
	e.cols[0] = e.cols[0][:0]
	e.cols[1] = e.cols[1][:0]
	e.cols[2] = e.cols[2][:0]
	e.n = 0
	return err
}
