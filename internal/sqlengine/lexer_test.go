package sqlengine

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasicSelect(t *testing.T) {
	toks, err := lexSQL("SELECT s, r FROM T0 WHERE s = 1;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.text)
	}
	want := "SELECT s , r FROM T0 WHERE s = 1 ; "
	if got := strings.Join(texts, " "); got != want {
		t.Fatalf("tokens = %q, want %q", got, want)
	}
}

func TestLexBitwiseOperators(t *testing.T) {
	toks, err := lexSQL("a & ~b | c << 2 >> 1")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.kind == tokOp {
			ops = append(ops, tok.text)
		}
	}
	want := []string{"&", "~", "|", "<<", ">>"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]tokenKind{
		"42":      tokNumber,
		"3.14":    tokNumber,
		"1e10":    tokNumber,
		"2.5E-3":  tokNumber,
		".5":      tokNumber,
		"0.70710": tokNumber,
	}
	for src, kind := range cases {
		toks, err := lexSQL(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].kind != kind || toks[0].text != src {
			t.Fatalf("%q lexed as %v %q", src, toks[0].kind, toks[0].text)
		}
	}
}

func TestLexStringsAndQuotedIdents(t *testing.T) {
	toks, err := lexSQL(`SELECT "weird name", 'it''s' FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokIdent || toks[1].text != "weird name" {
		t.Fatalf("quoted ident = %+v", toks[1])
	}
	if toks[3].kind != tokString || toks[3].text != "it's" {
		t.Fatalf("string = %+v", toks[3])
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexSQL("SELECT 1 -- line comment\n /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	// SELECT, 1, +, 2, EOF
	if len(toks) != 5 {
		t.Fatalf("tokens = %v", kinds(toks))
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "SELECT #"} {
		if _, err := lexSQL(src); err == nil {
			t.Fatalf("%q: expected lex error", src)
		}
	}
}

func TestLexParam(t *testing.T) {
	toks, err := lexSQL("SELECT ? + ?")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, tok := range toks {
		if tok.kind == tokParam {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("param count = %d", n)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := lexSQL("select FROM Select")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokKeyword || toks[0].text != "SELECT" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].kind != tokKeyword || toks[1].text != "FROM" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[2].kind != tokKeyword {
		t.Fatalf("tok2 = %+v", toks[2])
	}
}
