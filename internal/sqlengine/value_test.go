package sqlengine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-42), "-42"},
		{NewFloat(2.5), "2.5"},
		{NewText("hi"), "hi"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	if i, err := NewText(" 42 ").AsInt(); err != nil || i != 42 {
		t.Fatalf("AsInt = %v, %v", i, err)
	}
	if _, err := NewText("nope").AsInt(); err == nil {
		t.Fatal("expected error")
	}
	if f, err := NewInt(3).AsFloat(); err != nil || f != 3.0 {
		t.Fatalf("AsFloat = %v, %v", f, err)
	}
	if f, err := NewText("2.5e2").AsFloat(); err != nil || f != 250 {
		t.Fatalf("AsFloat = %v, %v", f, err)
	}
	if _, err := Null.AsInt(); err == nil {
		t.Fatal("NULL AsInt must error")
	}
}

func TestValueBoolTruthiness(t *testing.T) {
	if b, known := NewInt(0).Bool(); known && b {
		t.Fatal("0 must be false")
	}
	if b, known := NewFloat(0.1).Bool(); !known || !b {
		t.Fatal("0.1 must be true")
	}
	if _, known := Null.Bool(); known {
		t.Fatal("NULL truth must be unknown")
	}
}

func TestCompareTotalOrdering(t *testing.T) {
	// NULL < numbers < text.
	if CompareTotal(Null, NewInt(-999)) >= 0 {
		t.Fatal("NULL must sort first")
	}
	if CompareTotal(NewInt(5), NewText("0")) >= 0 {
		t.Fatal("numbers sort before text")
	}
	// Cross-type numeric comparison.
	if CompareTotal(NewInt(2), NewFloat(2.5)) >= 0 {
		t.Fatal("2 < 2.5")
	}
	if CompareTotal(NewFloat(2.0), NewInt(2)) != 0 {
		t.Fatal("2.0 == 2")
	}
	// Large int64 values must compare exactly, not via float rounding.
	a := NewInt(1<<62 + 1)
	b := NewInt(1 << 62)
	if CompareTotal(a, b) <= 0 {
		t.Fatal("large ints must compare exactly")
	}
}

func TestArithmeticIntFloatPromotion(t *testing.T) {
	v, err := Arithmetic("+", NewInt(1), NewFloat(0.5))
	if err != nil || v.T != TypeFloat || v.F != 1.5 {
		t.Fatalf("1 + 0.5 = %+v, %v", v, err)
	}
	v, _ = Arithmetic("*", NewInt(3), NewInt(4))
	if v.T != TypeInt || v.I != 12 {
		t.Fatalf("3*4 = %+v", v)
	}
	// Integer division truncates; float division does not.
	v, _ = Arithmetic("/", NewInt(7), NewInt(2))
	if v.I != 3 {
		t.Fatalf("7/2 = %+v", v)
	}
	v, _ = Arithmetic("/", NewFloat(7), NewInt(2))
	if v.F != 3.5 {
		t.Fatalf("7.0/2 = %+v", v)
	}
	// Division and modulo by zero are NULL.
	for _, op := range []string{"/", "%"} {
		v, err := Arithmetic(op, NewInt(1), NewInt(0))
		if err != nil || !v.IsNull() {
			t.Fatalf("1 %s 0 = %+v, %v", op, v, err)
		}
	}
	if _, err := Arithmetic("+", NewText("a"), NewInt(1)); err == nil {
		t.Fatal("text arithmetic must error")
	}
}

func TestApplyAffinity(t *testing.T) {
	// Integral float to INT column becomes int.
	if v := applyAffinity(NewFloat(3.0), TypeInt); v.T != TypeInt || v.I != 3 {
		t.Fatalf("v = %+v", v)
	}
	// Non-integral float keeps its value (dynamic typing).
	if v := applyAffinity(NewFloat(3.5), TypeInt); v.T != TypeFloat {
		t.Fatalf("v = %+v", v)
	}
	// Int to REAL column becomes float.
	if v := applyAffinity(NewInt(7), TypeFloat); v.T != TypeFloat || v.F != 7 {
		t.Fatalf("v = %+v", v)
	}
	// 0/1 to BOOLEAN column becomes bool.
	if v := applyAffinity(NewInt(1), TypeBool); v.T != TypeBool || v.I != 1 {
		t.Fatalf("v = %+v", v)
	}
	// NULL passes through.
	if v := applyAffinity(Null, TypeInt); !v.IsNull() {
		t.Fatalf("v = %+v", v)
	}
}

func TestEncodeValueKeyNumericEquality(t *testing.T) {
	// SQL equality: 1, 1.0, TRUE group together.
	k1 := encodeValueKey(NewInt(1))
	k2 := encodeValueKey(NewFloat(1.0))
	k3 := encodeValueKey(NewBool(true))
	if k1 != k2 || k1 != k3 {
		t.Fatalf("keys differ: %q %q %q", k1, k2, k3)
	}
	// But text "1" stays distinct.
	if encodeValueKey(NewText("1")) == k1 {
		t.Fatal("text must not collide with number")
	}
	// Non-integral floats distinct from ints.
	if encodeValueKey(NewFloat(1.5)) == k1 {
		t.Fatal("1.5 must not collide with 1")
	}
}

func TestEncodeRowKeyNoCollisions(t *testing.T) {
	// Composite keys must not collide across boundaries:
	// ("ab", "c") vs ("a", "bc").
	a := encodeRowKey([]Value{NewText("ab"), NewText("c")})
	b := encodeRowKey([]Value{NewText("a"), NewText("bc")})
	if a == b {
		t.Fatal("length prefixes failed")
	}
}

func TestCompareTotalPropertyAntisymmetric(t *testing.T) {
	f := func(a, b int64, fa, fb float64) bool {
		if math.IsNaN(fa) || math.IsNaN(fb) {
			return true
		}
		vals := []Value{NewInt(a), NewInt(b), NewFloat(fa), NewFloat(fb), Null, NewText("x")}
		for _, x := range vals {
			for _, y := range vals {
				if CompareTotal(x, y) != -CompareTotal(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRowBytesGrowsWithContent(t *testing.T) {
	small := rowBytes(Row{NewInt(1)})
	big := rowBytes(Row{NewInt(1), NewText("a longer string value here")})
	if big <= small {
		t.Fatalf("rowBytes: %d vs %d", small, big)
	}
}
