package sqlengine

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Table statistics. Every base-table store carries an optional
// *tableStats collector that the storage layer updates incrementally at
// append time (ColStore.Append/AppendBatch, RowStore.Append): row count,
// per-column null count, integer min/max, a zero count on numeric
// columns (the sparsity signal of the amplitude columns in translated
// gate queries), and a cheap probabilistic distinct estimate. ANALYZE
// <table> rebuilds the same statistics from a full scan, for tables
// whose store predates collection (CREATE TABLE AS SELECT results).
//
// The statistics feed the cost model in optimize.go: filter
// selectivities, join and aggregation cardinalities, and the physical
// plan choices (hash-join build side and strategy, hash-table
// pre-sizing, serial-vs-parallel gathering) all derive from them.
// Statistics after DELETE/UPDATE stay exact because those statements
// rewrite the table into a fresh store with a fresh collector.

// distinctBits is the size of the distinct-count bitmap. Linear
// (probabilistic) counting over 4096 bits estimates distinct counts with
// a few percent error up to ~10k distinct values and degrades gracefully
// to a saturating lower bound beyond — plenty for selectivity
// estimation, at 512 bytes per column.
const distinctBits = 4096

// distinctSketch is a linear probabilistic counting bitmap.
type distinctSketch struct {
	bits [distinctBits / 64]uint64
	set  int
}

func (s *distinctSketch) add(h uint64) {
	i := h % distinctBits
	w, b := i>>6, uint64(1)<<(i&63)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.set++
	}
}

// estimate returns the estimated number of distinct values observed.
func (s *distinctSketch) estimate() float64 {
	m := float64(distinctBits)
	unset := m - float64(s.set)
	if unset < 1 {
		// Saturated: every slot hit. The true count is at least ~m ln m.
		return m * math.Log(m)
	}
	return m * math.Log(m/unset)
}

// valueHash hashes a value for distinct counting. Values that compare
// SQL-equal must collide: integer-valued floats hash like the integer
// (mirroring intKey), booleans like 0/1.
func valueHash(v Value) uint64 {
	switch v.T {
	case TypeInt, TypeBool:
		return mix64(uint64(v.I), 0)
	case TypeFloat:
		if ik, ok := intKey(v); ok {
			return mix64(uint64(ik), 0)
		}
		return mix64(math.Float64bits(v.F), 1)
	case TypeText:
		h := fnv.New64a()
		h.Write([]byte(v.S))
		return h.Sum64()
	}
	return 0
}

// zoneEntry is one column's zone map for one 8192-row morsel: enough
// metadata to decide — without decoding the morsel — whether a pushed
// scan filter can possibly match any of its rows. The bounds are
// conservative by construction: a skip is taken only when the zone
// *proves* no row qualifies, so skipping is exactly equivalent to the
// filter dropping every row of the morsel (bit-neutral under the
// morsel-order merge contract). NaN and mixed/other-typed zones refuse
// to prove anything (hasNaN/hasOther): the engine's comparison
// semantics treat NaN as numerically equal and order text above
// numbers, so only clean int/float zones are usable.
type zoneEntry struct {
	rows  int32
	nulls int32
	// hasInt/hasFloat report whether any INTEGER/REAL value landed in
	// this zone; the corresponding min/max bounds are valid only then.
	hasInt, hasFloat bool
	hasNaN           bool
	// hasOther marks text/bool/mixed values, which the zone checks
	// cannot bound.
	hasOther       bool
	intMin, intMax int64
	fMin, fMax     float64
}

// observe folds one value into the zone.
func (z *zoneEntry) observe(v Value) {
	z.rows++
	switch v.T {
	case TypeNull:
		z.nulls++
	case TypeInt:
		if !z.hasInt || v.I < z.intMin {
			z.intMin = v.I
		}
		if !z.hasInt || v.I > z.intMax {
			z.intMax = v.I
		}
		z.hasInt = true
	case TypeFloat:
		f := v.F
		if f != f { // NaN: comparisons cannot be bounded
			z.hasNaN = true
			return
		}
		if !z.hasFloat || f < z.fMin {
			z.fMin = f
		}
		if !z.hasFloat || f > z.fMax {
			z.fMax = f
		}
		z.hasFloat = true
	default:
		z.hasOther = true
	}
}

// absMax bounds |v| over the zone's REAL values (0 when none).
func (z *zoneEntry) absMax() float64 {
	if !z.hasFloat {
		return 0
	}
	return math.Max(math.Abs(z.fMin), math.Abs(z.fMax))
}

// colStats accumulates one column's statistics.
type colStats struct {
	nulls int64
	// zeros counts numeric values equal to zero — the sparsity signal:
	// on an amplitude column, rows/(rows-zeros) bounds how much
	// zero-amplitude pruning can shrink the state.
	zeros int64
	// intMin/intMax track INTEGER values only (intSeen reports whether
	// any were observed).
	intMin, intMax int64
	intSeen        bool
	sketch         distinctSketch
	// zones is the per-morsel zone map, indexed by rowIndex/morselRows.
	// Valid for skip decisions only while the collector is exact
	// (tableStats.rows == store.Len()) and the store's memory rows start
	// at table row 0 (never spilled) — the skip paths check both.
	zones []zoneEntry
}

// observeAt folds one value at absolute table row index row.
func (c *colStats) observeAt(v Value, row int64) {
	c.observe(v)
	zi := int(row / morselRows)
	for len(c.zones) <= zi {
		c.zones = append(c.zones, zoneEntry{})
	}
	c.zones[zi].observe(v)
}

func (c *colStats) observe(v Value) {
	switch v.T {
	case TypeNull:
		c.nulls++
		return
	case TypeInt:
		if !c.intSeen || v.I < c.intMin {
			c.intMin = v.I
		}
		if !c.intSeen || v.I > c.intMax {
			c.intMax = v.I
		}
		c.intSeen = true
		if v.I == 0 {
			c.zeros++
		}
	case TypeFloat:
		if v.F == 0 {
			c.zeros++
		}
	}
	c.sketch.add(valueHash(v))
}

// distinct returns the column's estimated distinct count, at least 1.
func (c *colStats) distinct() float64 {
	d := c.sketch.estimate()
	if d < 1 {
		return 1
	}
	return d
}

// tableStats is one table's statistics collector and snapshot. Appends
// run under the database write lock and the planner reads under the read
// lock, so plain fields suffice.
type tableStats struct {
	rows int64
	cols []colStats
}

func (ts *tableStats) observeRow(row Row) {
	ts.ensureWidth(len(row))
	for i, v := range row {
		ts.cols[i].observeAt(v, ts.rows)
	}
	ts.rows++
}

// observeBatch folds every selected row of a batch into the statistics,
// column at a time. Values are observed with their absolute table row
// index (append order), which buckets them into per-morsel zones.
func (ts *tableStats) observeBatch(b *rowBatch) {
	ts.ensureWidth(b.width())
	for i := range b.cols {
		col := b.cols[i]
		cs := &ts.cols[i]
		if b.sel == nil {
			for k, v := range col[:b.n] {
				cs.observeAt(v, ts.rows+int64(k))
			}
		} else {
			for k, p := range b.sel {
				cs.observeAt(col[p], ts.rows+int64(k))
			}
		}
	}
	ts.rows += int64(b.rows())
}

// zone returns column col's zone entry for morsel m, or nil when not
// collected.
func (ts *tableStats) zone(col, m int) *zoneEntry {
	if ts == nil || col < 0 || col >= len(ts.cols) {
		return nil
	}
	zs := ts.cols[col].zones
	if m < 0 || m >= len(zs) {
		return nil
	}
	return &zs[m]
}

func (ts *tableStats) ensureWidth(w int) {
	for len(ts.cols) < w {
		ts.cols = append(ts.cols, colStats{})
	}
}

// col returns the statistics for column i, or nil when not collected.
func (ts *tableStats) col(i int) *colStats {
	if ts == nil || i < 0 || i >= len(ts.cols) {
		return nil
	}
	return &ts.cols[i]
}

// nullFraction and zeroFraction report per-column fractions of the
// table's rows (0 when no rows were observed).
func (c *colStats) nullFraction(rows int64) float64 {
	if rows <= 0 {
		return 0
	}
	return float64(c.nulls) / float64(rows)
}

func (c *colStats) zeroFraction(rows int64) float64 {
	if rows <= 0 {
		return 0
	}
	return float64(c.zeros) / float64(rows)
}

// statsCollecting is the optional storage interface for incremental
// statistics: both ColStore and RowStore implement it. setStatsCollector
// attaches (or detaches, with nil) the collector updated on every
// append; statsSnapshot returns the current collector.
type statsCollecting interface {
	setStatsCollector(*tableStats)
	statsSnapshot() *tableStats
}

// storeStats returns the statistics collected on a store, or nil.
func storeStats(store tableStore) *tableStats {
	if sc, ok := store.(statsCollecting); ok {
		return sc.statsSnapshot()
	}
	return nil
}

// attachStats attaches a fresh statistics collector to a store (no-op
// for stores that cannot collect).
func attachStats(store tableStore) *tableStats {
	if sc, ok := store.(statsCollecting); ok {
		ts := &tableStats{}
		sc.setStatsCollector(ts)
		return ts
	}
	return nil
}

// AnalyzeStmt is ANALYZE <table>: recompute the table's statistics from
// a full scan and attach them to the store for the planner.
type AnalyzeStmt struct {
	Table string
}

func (*AnalyzeStmt) stmt() {}

// execAnalyze scans the table once, rebuilding its statistics. It
// returns the number of rows analyzed.
func (db *DB) execAnalyze(s *AnalyzeStmt) (int64, error) {
	if db.closed {
		return 0, fmt.Errorf("sqlengine: database is closed")
	}
	meta := db.lookupTable(s.Table)
	if meta == nil {
		return 0, fmt.Errorf("sqlengine: no such table: %s", s.Table)
	}
	sc, ok := meta.store.(statsCollecting)
	if !ok {
		return meta.store.Len(), nil
	}
	// Incrementally collected statistics are exact by construction (a
	// collector attached at CREATE observes every append, and
	// DELETE/UPDATE rewrites re-collect); skip the rescan then.
	// core.Translate emits ANALYZE after its setup inserts, so this
	// keeps repeated translations and cached-plan rebinds cheap.
	if cur := sc.statsSnapshot(); cur != nil && cur.rows == meta.store.Len() {
		return cur.rows, nil
	}
	ts := &tableStats{}
	frozen := true
	if f, isFreezable := meta.store.(interface{ frozenState() bool }); isFreezable {
		frozen = f.frozenState()
	}
	restore := func() {
		if !frozen {
			meta.store.Thaw()
		}
	}
	scan, err := meta.store.batchScan() // freezes the store
	if err != nil {
		restore()
		return 0, err
	}
	for {
		b, err := scan.NextBatch()
		if err != nil {
			restore()
			return 0, err
		}
		if b == nil {
			break
		}
		ts.observeBatch(b)
	}
	restore()
	sc.setStatsCollector(ts)
	return ts.rows, nil
}
