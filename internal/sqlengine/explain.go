package sqlengine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Explain returns a rendering of the physical plan for a SELECT
// statement without executing it. With the optimizer on, the plan shown
// is the optimized one, annotated with the cost model's estimated rows
// and cost per operator; CTEs the execution would materialize appear as
// MaterializeCTE subplans (inlined CTEs appear in place). EXPLAIN
// itself does no data movement.
func (db *DB) Explain(sqlText string, params ...Value) (string, error) {
	stmt, nparams, err := ParseStatement(sqlText)
	if err != nil {
		return "", err
	}
	if nparams > len(params) {
		// Explaining with unbound parameters is fine; bind NULLs.
		pad := make([]Value, nparams-len(params))
		params = append(params, pad...)
	}
	var sel *SelectStmt
	analyze := false
	switch s := stmt.(type) {
	case *SelectStmt:
		sel = s
	case *ExplainStmt:
		sel, analyze = s.Select, s.Analyze
	default:
		return "", fmt.Errorf("sqlengine: EXPLAIN requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return "", fmt.Errorf("sqlengine: database is closed")
	}
	if analyze {
		return db.explainAnalyzeSelect(context.Background(), sel, params)
	}
	return db.explainSelect(sel, params)
}

func (db *DB) explainSelect(sel *SelectStmt, params []Value) (string, error) {
	ctx := db.newExecCtx(context.Background(), params)
	node, names, p, err := db.buildPlan(ctx, sel, true)
	if err != nil {
		return "", err
	}
	defer p.release()
	kline, kcore := kernelExplain(ctx, node)
	var b strings.Builder
	writeExplainHeader(&b, db.env, ctx, names, kline)
	describePlan(&b, node, 0, kcore)
	return b.String(), nil
}

// ExplainAnalyze executes the SELECT and renders the physical plan with
// both the cost model's estimates and the actual rows each operator
// produced, plus total wall time (planning and CTE materialization
// included).
func (db *DB) ExplainAnalyze(ctx context.Context, sqlText string, params ...Value) (string, error) {
	stmt, nparams, err := ParseStatement(sqlText)
	if err != nil {
		return "", err
	}
	if nparams > len(params) {
		pad := make([]Value, nparams-len(params))
		params = append(params, pad...)
	}
	var sel *SelectStmt
	switch s := stmt.(type) {
	case *SelectStmt:
		sel = s
	case *ExplainStmt:
		sel = s.Select
	default:
		return "", fmt.Errorf("sqlengine: EXPLAIN ANALYZE requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return "", fmt.Errorf("sqlengine: database is closed")
	}
	return db.explainAnalyzeSelect(ctx, sel, params)
}

func (db *DB) explainAnalyzeSelect(stmtCtx context.Context, sel *SelectStmt, params []Value) (string, error) {
	ctx := db.newExecCtx(stmtCtx, params)
	start := time.Now() // CTE materialization happens during lowering
	node, names, p, err := db.buildPlan(ctx, sel, false)
	if err != nil {
		return "", err
	}
	defer p.release()
	node = instrumentPlan(node, 1)
	store, err := materializePlan(ctx, node)
	if err != nil {
		return "", err
	}
	elapsed := time.Since(start)
	total := store.Len()
	store.Release()
	var b strings.Builder
	var kcore planNode
	if k := ctx.kexec; k != nil {
		// The kernel tier ran under instrumentation (the matcher walks
		// through statNodes): the fused loop replaced the gate-stage
		// core — rendered below as its output scan — and reports its
		// own counters from the kernel timer.
		writeExplainHeader(&b, db.env, ctx, names, "kernel: gate-stage (analyzed)")
		fmt.Fprintf(&b, "kernel actual: rows_in=%d rows_out=%d morsels=%d runs_skipped=%d in %s\n",
			k.rowsIn, k.rowsOut, k.morsels, k.runsSkipped, k.wall.Round(time.Microsecond))
	} else {
		kline, core := kernelExplain(ctx, node)
		kcore = core
		writeExplainHeader(&b, db.env, ctx, names, kline)
	}
	if ck := ctx.chainExec; ck != nil {
		// CTE materialization ran the fused chain during lowering.
		fmt.Fprintf(&b, "kernel chain actual: %s rows_in=%d rows_out=%d in %s\n",
			chainAnnotation(int(ck.stages)), ck.rowsIn, ck.rowsOut, ck.wall.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "actual: %d rows in %s\n", total, elapsed.Round(time.Microsecond))
	describePlan(&b, node, 0, kcore)
	return b.String(), nil
}

// runExplainStmt serves EXPLAIN [ANALYZE] through the Query surface: the
// rendered plan becomes a one-column result set (column "plan", one row
// per line).
func (db *DB) runExplainStmt(ctx context.Context, s *ExplainStmt, params []Value) (*ResultSet, error) {
	var text string
	var err error
	if s.Analyze {
		db.mu.RLock()
		if db.closed {
			db.mu.RUnlock()
			return nil, fmt.Errorf("sqlengine: database is closed")
		}
		text, err = db.explainAnalyzeSelect(ctx, s.Select, params)
		db.mu.RUnlock()
	} else {
		db.mu.RLock()
		if db.closed {
			db.mu.RUnlock()
			return nil, fmt.Errorf("sqlengine: database is closed")
		}
		text, err = db.explainSelect(s.Select, params)
		db.mu.RUnlock()
	}
	if err != nil {
		return nil, err
	}
	store := db.env.newStore()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if err := store.Append(Row{NewText(line)}); err != nil {
			store.Release()
			return nil, err
		}
	}
	if err := store.Freeze(); err != nil {
		store.Release()
		return nil, err
	}
	return &ResultSet{Columns: []string{"plan"}, store: store}, nil
}

func writeExplainHeader(b *strings.Builder, env *storageEnv, ctx *execCtx, names []string, kernelLine string) {
	fmt.Fprintf(b, "output: %s\n", strings.Join(names, ", "))
	fmt.Fprintf(b, "executor: vectorized (batch=%d, selection vectors), morsel-parallel (workers=%d, morsel=%d rows)\n",
		batchSize, ctx.workers, morselRows)
	fmt.Fprintf(b, "storage: %s\n", storageDesc(env))
	if env.optimizer {
		fmt.Fprintf(b, "optimizer: on (cost-based: statistics, pushdown, pruning, CTE inlining, join planning)\n")
	} else {
		fmt.Fprintf(b, "optimizer: off\n")
	}
	fmt.Fprintf(b, "%s\n", kernelLine)
}

// kernelExplain reports the kernel tier's structural decision for a
// plan: the EXPLAIN header line and the matched core node (nil when
// the matcher declines). A structural dry run only — no counters, no
// cache, no execution; the data-dependent bind checks (spill state,
// column vector types) still happen at run time.
func kernelExplain(ctx *execCtx, node planNode) (string, planNode) {
	env := ctx.env
	if !env.kernels {
		return "kernel: off", nil
	}
	if env.budget.Limit() > 0 {
		return "kernel: fallback (" + kfBudgetLimited + ")", nil
	}
	if env.rowLayout {
		return "kernel: fallback (" + kfRowLayout + ")", nil
	}
	core, reason := explainKernelMatch(ctx, node)
	if core == nil {
		// The output-layer kernel picks up translated probability and
		// marginal aggregations the gate-stage matcher declines.
		if plan := matchOutputAgg(node); plan != nil {
			if cs, ok := plan.scan.store.(*ColStore); ok && !cs.Spilled() {
				if _, ok := compileOutputRun(env, plan, cs); ok {
					ann := outputAnnotationScalar
					if plan.grouped {
						ann = outputAnnotationGroup
					}
					return "kernel: " + ann, nil
				}
			}
		}
		return "kernel: fallback (" + reason + ")", nil
	}
	if proj, ok := core.(*projectNode); ok && env.fusion {
		// The state side may be a chain of gate-stage CTEs the fusion
		// tier would execute as one multi-stage pass feeding this core.
		if stages := explainChainStages(env, proj); stages >= 2 {
			return "kernel: " + chainAnnotation(stages) + " + " + kernelAnnotation, core
		}
	}
	return "kernel: " + kernelAnnotation, core
}

// explainKernelMatch mirrors findGateStage's wrapper walk without
// mutating the tree or touching the kernel cache and counters.
func explainKernelMatch(ctx *execCtx, node planNode) (planNode, string) {
	cur := node
	for {
		switch n := cur.(type) {
		case *statNode:
			cur = n.child
		case *projectNode:
			if agg, _ := coreAggOf(n); agg != nil {
				kern, reason := compileGateStage(n, ctx.env, false)
				if kern == nil {
					return nil, reason
				}
				return n, ""
			}
			cur = n.child
		case *sortNode:
			cur = n.child
		case *aliasNode:
			cur = n.child
		case *filterNode:
			cur = n.child
		case *limitNode:
			cur = n.child
		case *sliceProjectNode:
			cur = n.child
		case *pickNode:
			cur = n.child
		default:
			return nil, kfNoGateStage
		}
	}
}

// storageDesc renders the engine's table storage layout for the EXPLAIN
// header.
func storageDesc(env *storageEnv) string {
	if env.rowLayout {
		return "row (legacy []Row layout)"
	}
	enc := "encodings=on"
	if !env.encodings {
		enc = "encodings=off"
	}
	return "columnar (typed column vectors + null bitmaps, spill=column chunks, " + enc + ")"
}

// scanLayout renders one scanned store's layout — for the columnar
// store, the vector type of every column.
func scanLayout(store tableStore) string {
	kinds := store.vectorKinds()
	if kinds == nil {
		return store.layout()
	}
	return store.layout() + "[" + strings.Join(kinds, " ") + "]"
}

// estSuffix renders the cost model's annotation for one operator line
// (empty when the optimizer is off).
func estSuffix(est *nodeEst) string {
	if est == nil || est.rows < 0 {
		return ""
	}
	return fmt.Sprintf(" (est_rows=%.4g cost=%.4g)", est.rows, est.cost)
}

// statNode wraps a physical operator, counting the rows it emits and —
// on a sampled subset of batches — the time spent in its NextBatch.
// All counters are atomic (morsel streams count concurrently), and the
// wrapper is transparent to morsel-parallel execution AND to the
// kernel matcher (findGateStage walks through it), so the instrumented
// plan runs the same schedule as the uninstrumented one. EXPLAIN
// ANALYZE instruments with sampleEvery=1 (every batch timed); traced
// normal execution uses the trace's stride so timing never serializes
// the parallel path.
type statNode struct {
	child  planNode
	actual atomic.Int64
	// batches counts NextBatch calls; sampled counts the timed ones;
	// nanos accumulates the timed durations. Operator-span attachment
	// estimates total operator time as nanos·batches/sampled
	// (trace_exec.go).
	batches     atomic.Int64
	sampled     atomic.Int64
	nanos       atomic.Int64
	sampleEvery int
}

func (n *statNode) schema() planSchema { return n.child.schema() }

// nextThrough pulls one batch from child, counting rows always and
// timing every sampleEvery-th call.
func (n *statNode) nextThrough(child interface{ NextBatch() (*rowBatch, error) }) (*rowBatch, error) {
	if (n.batches.Add(1)-1)%int64(n.sampleEvery) == 0 {
		start := time.Now()
		b, err := child.NextBatch()
		n.nanos.Add(time.Since(start).Nanoseconds())
		n.sampled.Add(1)
		if err == nil && b != nil {
			n.actual.Add(int64(b.rows()))
		}
		return b, err
	}
	b, err := child.NextBatch()
	if err == nil && b != nil {
		n.actual.Add(int64(b.rows()))
	}
	return b, err
}

func (n *statNode) open(ctx *execCtx) (batchIter, error) {
	it, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &statIter{child: it, n: n}, nil
}

func (n *statNode) openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error) {
	streams, ok, err := openMorselStreams(n.child, ctx, workers)
	if err != nil || !ok {
		return nil, ok, err
	}
	out := make([]morselStream, len(streams))
	for i, s := range streams {
		out[i] = &statMorselStream{child: s, n: n}
	}
	return out, true, nil
}

type statIter struct {
	child batchIter
	n     *statNode
}

func (it *statIter) NextBatch() (*rowBatch, error) { return it.n.nextThrough(it.child) }

func (it *statIter) Close() { it.child.Close() }

type statMorselStream struct {
	child morselStream
	n     *statNode
}

func (s *statMorselStream) NextMorsel() (int, bool, error) { return s.child.NextMorsel() }

func (s *statMorselStream) NextBatch() (*rowBatch, error) { return s.n.nextThrough(s.child) }

func (s *statMorselStream) Close() { s.child.Close() }

// resetPlanStats zeroes every statNode counter in the tree (the
// parallel gather's serial fallback re-runs the plan from scratch).
func resetPlanStats(node planNode) {
	if sn, ok := node.(*statNode); ok {
		sn.actual.Store(0)
		sn.batches.Store(0)
		sn.sampled.Store(0)
		sn.nanos.Store(0)
	}
	for _, c := range planChildren(node) {
		resetPlanStats(c)
	}
}

// instrumentPlan wraps every operator with a row counter and sampled
// batch timer. sampleEvery 1 times every batch (EXPLAIN ANALYZE);
// larger strides amortize the timer calls for always-on tracing.
func instrumentPlan(node planNode, sampleEvery int) planNode {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	switch n := node.(type) {
	case *filterNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	case *projectNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	case *sliceProjectNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	case *pickNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	case *joinNode:
		n.left = instrumentPlan(n.left, sampleEvery)
		n.right = instrumentPlan(n.right, sampleEvery)
	case *aggNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	case *sortNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	case *limitNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	case *aliasNode:
		n.child = instrumentPlan(n.child, sampleEvery)
	}
	return &statNode{child: node, sampleEvery: sampleEvery}
}

func describePlan(b *strings.Builder, node planNode, depth int, kcore planNode) {
	pad := strings.Repeat("  ", depth)
	actual := ""
	if sn, ok := node.(*statNode); ok {
		actual = fmt.Sprintf(" actual_rows=%d", sn.actual.Load())
		node = sn.child
	}
	kmark := ""
	if kcore != nil && node == kcore {
		kmark = " [kernel=" + kernelAnnotation + "]"
	}
	line := func(format string, args ...any) {
		fmt.Fprintf(b, "%s%s%s%s%s\n", pad, fmt.Sprintf(format, args...), estSuffix(planEstimateOf(node)), kmark, actual)
	}
	switch n := node.(type) {
	case *oneRowNode:
		line("OneRow")
	case *storeScanNode:
		qual := ""
		if len(n.cols) > 0 {
			qual = n.cols[0].table
		}
		pruned := ""
		if n.keep != nil {
			names := make([]string, len(n.cols))
			for i, c := range n.cols {
				names[i] = c.name
			}
			pruned = fmt.Sprintf(", pruned=%d->%d cols [%s]", n.fullCols, len(n.keep), strings.Join(names, " "))
		}
		zone := ""
		if n.zp != nil {
			zone = fmt.Sprintf(", zonemap=%d checks", len(n.zp.checks))
			if sk := n.skipped.Load(); sk > 0 {
				zone += fmt.Sprintf(", skipped=%d", sk)
			}
		}
		kout := ""
		if n.fromKernel {
			kout = " [kernel output: " + kernelAnnotation + "]"
		}
		line("BatchScan %s (rows=%d, cols=%d, batch=%d, layout=%s%s%s)%s", qual, n.store.Len(), len(n.cols), batchSize, scanLayout(n.store), pruned, zone, kout)
	case *filterNode:
		mark := ""
		if n.pushed {
			mark = " [pushed to scan]"
		}
		line("BatchFilter %s [selection vector]%s", n.pred.Deparse(), mark)
		describePlan(b, n.child, depth+1, kcore)
	case *projectNode:
		exprs := make([]string, len(n.exprs))
		for i, e := range n.exprs {
			exprs[i] = e.Deparse()
		}
		line("BatchProject %s", strings.Join(exprs, ", "))
		describePlan(b, n.child, depth+1, kcore)
	case *sliceProjectNode:
		line("StripHiddenColumns keep=%d", n.keep)
		describePlan(b, n.child, depth+1, kcore)
	case *pickNode:
		line("ReorderColumns keep=%d", len(n.idxs))
		describePlan(b, n.child, depth+1, kcore)
	case *joinNode:
		if len(n.leftKeys) > 0 {
			keys := make([]string, len(n.leftKeys))
			for i := range n.leftKeys {
				keys[i] = n.leftKeys[i].Deparse() + " = " + n.rightKeys[i].Deparse()
			}
			residual := ""
			if n.residual != nil {
				residual = " residual=" + n.residual.Deparse()
			}
			mode := " [streaming batch probe]"
			if n.strategy == joinGrace {
				mode = " [grace partitioned: build exceeds budget]"
			}
			flipped := ""
			if n.flipped {
				flipped = " [build side flipped]"
			}
			line("HashJoin (%s) on %s%s%s%s", n.joinType, strings.Join(keys, " AND "), residual, mode, flipped)
		} else {
			pred := ""
			if n.residual != nil {
				pred = " on " + n.residual.Deparse()
			}
			line("NestedLoopJoin (%s)%s", n.joinType, pred)
		}
		describePlan(b, n.left, depth+1, kcore)
		describePlan(b, n.right, depth+1, kcore)
	case *aggNode:
		keys := make([]string, len(n.groupBy))
		for i, g := range n.groupBy {
			keys[i] = g.Deparse()
		}
		aggs := make([]string, len(n.aggs))
		distinct := false
		for i, a := range n.aggs {
			arg := "*"
			if a.Arg != nil {
				arg = a.Arg.Deparse()
			}
			d := ""
			if a.Distinct {
				d = "DISTINCT "
				distinct = true
			}
			aggs[i] = fmt.Sprintf("%s(%s%s)", a.Name, d, arg)
		}
		label := "HashAggregate"
		if len(n.aggs) == 0 {
			label = "HashDistinct"
		}
		mode := " [streaming]"
		if distinct {
			mode = " [materialized]"
		}
		line("%s keys=[%s] aggs=[%s]%s", label, strings.Join(keys, ", "), strings.Join(aggs, ", "), mode)
		describePlan(b, n.child, depth+1, kcore)
	case *sortNode:
		keys := make([]string, len(n.keys))
		for i, k := range n.keys {
			dir := "ASC"
			if k.desc {
				dir = "DESC"
			}
			keys[i] = k.expr.Deparse() + " " + dir
		}
		line("Sort %s (external merge when over budget)", strings.Join(keys, ", "))
		describePlan(b, n.child, depth+1, kcore)
	case *limitNode:
		line("Limit")
		describePlan(b, n.child, depth+1, kcore)
	case *aliasNode:
		line("As %s", n.table)
		describePlan(b, n.child, depth+1, kcore)
	case *cteShowNode:
		line("MaterializeCTE %s (refs=%d)", n.name, n.uses)
		describePlan(b, n.child, depth+1, kcore)
	default:
		line("%T", node)
	}
}
