package sqlengine

import (
	"context"
	"fmt"
	"strings"
)

// Explain returns a rendering of the physical plan for a SELECT
// statement without executing it. CTEs are inlined as subplans (one per
// reference) instead of being materialized, so EXPLAIN itself does no
// data movement.
func (db *DB) Explain(sqlText string, params ...Value) (string, error) {
	stmt, nparams, err := ParseStatement(sqlText)
	if err != nil {
		return "", err
	}
	if nparams > len(params) {
		// Explaining with unbound parameters is fine; bind NULLs.
		pad := make([]Value, nparams-len(params))
		params = append(params, pad...)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("sqlengine: EXPLAIN requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return "", fmt.Errorf("sqlengine: database is closed")
	}
	ctx := db.newExecCtx(context.Background(), params)
	p := &planner{ctx: ctx, db: db, explain: true}
	defer p.release()
	node, names, err := p.planSelect(sel, nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "output: %s\n", strings.Join(names, ", "))
	fmt.Fprintf(&b, "executor: vectorized (batch=%d, selection vectors), morsel-parallel (workers=%d, morsel=%d rows)\n",
		batchSize, ctx.workers, morselRows)
	fmt.Fprintf(&b, "storage: %s\n", storageDesc(db.env))
	describePlan(&b, node, 0)
	return b.String(), nil
}

// storageDesc renders the engine's table storage layout for the EXPLAIN
// header.
func storageDesc(env *storageEnv) string {
	if env.rowLayout {
		return "row (legacy []Row layout)"
	}
	return "columnar (typed column vectors + null bitmaps, spill=column chunks)"
}

// scanLayout renders one scanned store's layout — for the columnar
// store, the vector type of every column.
func scanLayout(store tableStore) string {
	kinds := store.vectorKinds()
	if kinds == nil {
		return store.layout()
	}
	return store.layout() + "[" + strings.Join(kinds, " ") + "]"
}

func describePlan(b *strings.Builder, node planNode, depth int) {
	pad := strings.Repeat("  ", depth)
	switch n := node.(type) {
	case *oneRowNode:
		fmt.Fprintf(b, "%sOneRow\n", pad)
	case *storeScanNode:
		qual := ""
		if len(n.cols) > 0 {
			qual = n.cols[0].table
		}
		fmt.Fprintf(b, "%sBatchScan %s (rows=%d, cols=%d, batch=%d, layout=%s)\n", pad, qual, n.store.Len(), len(n.cols), batchSize, scanLayout(n.store))
	case *filterNode:
		fmt.Fprintf(b, "%sBatchFilter %s [selection vector]\n", pad, n.pred.Deparse())
		describePlan(b, n.child, depth+1)
	case *projectNode:
		exprs := make([]string, len(n.exprs))
		for i, e := range n.exprs {
			exprs[i] = e.Deparse()
		}
		fmt.Fprintf(b, "%sBatchProject %s\n", pad, strings.Join(exprs, ", "))
		describePlan(b, n.child, depth+1)
	case *sliceProjectNode:
		fmt.Fprintf(b, "%sStripHiddenColumns keep=%d\n", pad, n.keep)
		describePlan(b, n.child, depth+1)
	case *joinNode:
		if len(n.leftKeys) > 0 {
			keys := make([]string, len(n.leftKeys))
			for i := range n.leftKeys {
				keys[i] = n.leftKeys[i].Deparse() + " = " + n.rightKeys[i].Deparse()
			}
			residual := ""
			if n.residual != nil {
				residual = " residual=" + n.residual.Deparse()
			}
			fmt.Fprintf(b, "%sHashJoin (%s) on %s%s [streaming batch probe]\n", pad, n.joinType, strings.Join(keys, " AND "), residual)
		} else {
			pred := ""
			if n.residual != nil {
				pred = " on " + n.residual.Deparse()
			}
			fmt.Fprintf(b, "%sNestedLoopJoin (%s)%s\n", pad, n.joinType, pred)
		}
		describePlan(b, n.left, depth+1)
		describePlan(b, n.right, depth+1)
	case *aggNode:
		keys := make([]string, len(n.groupBy))
		for i, g := range n.groupBy {
			keys[i] = g.Deparse()
		}
		aggs := make([]string, len(n.aggs))
		distinct := false
		for i, a := range n.aggs {
			arg := "*"
			if a.Arg != nil {
				arg = a.Arg.Deparse()
			}
			d := ""
			if a.Distinct {
				d = "DISTINCT "
				distinct = true
			}
			aggs[i] = fmt.Sprintf("%s(%s%s)", a.Name, d, arg)
		}
		label := "HashAggregate"
		if len(n.aggs) == 0 {
			label = "HashDistinct"
		}
		mode := " [streaming]"
		if distinct {
			mode = " [materialized]"
		}
		fmt.Fprintf(b, "%s%s keys=[%s] aggs=[%s]%s\n", pad, label, strings.Join(keys, ", "), strings.Join(aggs, ", "), mode)
		describePlan(b, n.child, depth+1)
	case *sortNode:
		keys := make([]string, len(n.keys))
		for i, k := range n.keys {
			dir := "ASC"
			if k.desc {
				dir = "DESC"
			}
			keys[i] = k.expr.Deparse() + " " + dir
		}
		fmt.Fprintf(b, "%sSort %s (external merge when over budget)\n", pad, strings.Join(keys, ", "))
		describePlan(b, n.child, depth+1)
	case *limitNode:
		fmt.Fprintf(b, "%sLimit\n", pad)
		describePlan(b, n.child, depth+1)
	case *aliasNode:
		fmt.Fprintf(b, "%sAs %s\n", pad, n.table)
		describePlan(b, n.child, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", pad, node)
	}
}
