package sqlengine

import (
	"fmt"
	"strings"
)

// columnResolver maps a (qualifier, column) pair to a slot index in the
// rows an operator produces. Matching is case-insensitive.
type columnResolver interface {
	// resolveColumn returns the row index of the column, or an error if
	// unknown or ambiguous.
	resolveColumn(table, name string) (int, error)
}

// compiledExpr evaluates an expression against a row.
type compiledExpr func(row Row) (Value, error)

// compileCtx carries what expression compilation needs.
type compileCtx struct {
	resolver columnResolver
	params   []Value
}

// compileExpr resolves all column references up front and returns a
// closure tree; per-row evaluation does no name lookups.
func compileExpr(e Expr, ctx *compileCtx) (compiledExpr, error) {
	switch n := e.(type) {
	case *Literal:
		v := n.Val
		return func(Row) (Value, error) { return v, nil }, nil

	case *ParamRef:
		if n.Index >= len(ctx.params) {
			return nil, fmt.Errorf("sqlengine: statement has parameter %d but only %d values bound", n.Index+1, len(ctx.params))
		}
		v := ctx.params[n.Index]
		return func(Row) (Value, error) { return v, nil }, nil

	case *ColumnRef:
		idx, err := ctx.resolver.resolveColumn(n.Table, n.Name)
		if err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			if idx >= len(row) {
				return Null, fmt.Errorf("sqlengine: internal: column slot %d out of range %d", idx, len(row))
			}
			return row[idx], nil
		}, nil

	case *UnaryExpr:
		x, err := compileExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "-":
			return func(row Row) (Value, error) {
				v, err := x(row)
				if err != nil {
					return Null, err
				}
				return Negate(v)
			}, nil
		case "~":
			return func(row Row) (Value, error) {
				v, err := x(row)
				if err != nil {
					return Null, err
				}
				return BitwiseNot(v)
			}, nil
		case "NOT":
			return func(row Row) (Value, error) {
				v, err := x(row)
				if err != nil {
					return Null, err
				}
				b, known := v.Bool()
				if !known {
					return Null, nil
				}
				return NewBool(!b), nil
			}, nil
		}
		return nil, fmt.Errorf("sqlengine: unknown unary operator %q", n.Op)

	case *BinaryExpr:
		return compileBinary(n, ctx)

	case *FuncCall:
		if isAggregateName(n.Name) {
			return nil, fmt.Errorf("sqlengine: aggregate %s not allowed in this context", n.Name)
		}
		return compileScalarFunc(n, ctx)

	case *CaseExpr:
		return compileCase(n, ctx)

	case *IsNullExpr:
		x, err := compileExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(row Row) (Value, error) {
			v, err := x(row)
			if err != nil {
				return Null, err
			}
			return NewBool(v.IsNull() != not), nil
		}, nil

	case *InExpr:
		x, err := compileExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		items := make([]compiledExpr, len(n.List))
		for i, it := range n.List {
			c, err := compileExpr(it, ctx)
			if err != nil {
				return nil, err
			}
			items[i] = c
		}
		not := n.Not
		return func(row Row) (Value, error) {
			v, err := x(row)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			sawNull := false
			for _, it := range items {
				iv, err := it(row)
				if err != nil {
					return Null, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if cmp, ok := CompareSQL(v, iv); ok && cmp == 0 {
					return NewBool(!not), nil
				}
			}
			if sawNull {
				return Null, nil
			}
			return NewBool(not), nil
		}, nil

	case *BetweenExpr:
		x, err := compileExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(n.Lo, ctx)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(n.Hi, ctx)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(row Row) (Value, error) {
			v, err := x(row)
			if err != nil {
				return Null, err
			}
			lv, err := lo(row)
			if err != nil {
				return Null, err
			}
			hv, err := hi(row)
			if err != nil {
				return Null, err
			}
			c1, ok1 := CompareSQL(v, lv)
			c2, ok2 := CompareSQL(v, hv)
			if !ok1 || !ok2 {
				return Null, nil
			}
			in := c1 >= 0 && c2 <= 0
			return NewBool(in != not), nil
		}, nil

	case *CastExpr:
		x, err := compileExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		to := n.To
		return func(row Row) (Value, error) {
			v, err := x(row)
			if err != nil {
				return Null, err
			}
			return castValue(v, to)
		}, nil
	}
	return nil, fmt.Errorf("sqlengine: cannot compile expression %T", e)
}

func castValue(v Value, to Type) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch to {
	case TypeInt:
		i, err := v.AsInt()
		if err != nil {
			return Null, err
		}
		return NewInt(i), nil
	case TypeFloat:
		f, err := v.AsFloat()
		if err != nil {
			return Null, err
		}
		return NewFloat(f), nil
	case TypeText:
		return NewText(v.String()), nil
	case TypeBool:
		b, known := v.Bool()
		if !known {
			return Null, nil
		}
		return NewBool(b), nil
	}
	return Null, fmt.Errorf("sqlengine: cannot cast to %s", to)
}

func compileBinary(n *BinaryExpr, ctx *compileCtx) (compiledExpr, error) {
	l, err := compileExpr(n.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(n.R, ctx)
	if err != nil {
		return nil, err
	}
	op := n.Op
	switch op {
	case "+", "-", "*", "/", "%":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			return Arithmetic(op, lv, rv)
		}, nil
	case "&", "|", "<<", ">>":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			return Bitwise(op, lv, rv)
		}, nil
	case "=", "==", "!=", "<>", "<", "<=", ">", ">=":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			cmp, ok := CompareSQL(lv, rv)
			if !ok {
				return Null, nil
			}
			var b bool
			switch op {
			case "=", "==":
				b = cmp == 0
			case "!=", "<>":
				b = cmp != 0
			case "<":
				b = cmp < 0
			case "<=":
				b = cmp <= 0
			case ">":
				b = cmp > 0
			case ">=":
				b = cmp >= 0
			}
			return NewBool(b), nil
		}, nil
	case "AND":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			lb, lknown := lv.Bool()
			if lknown && !lb {
				return NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			rb, rknown := rv.Bool()
			if rknown && !rb {
				return NewBool(false), nil
			}
			if !lknown || !rknown {
				return Null, nil
			}
			return NewBool(true), nil
		}, nil
	case "OR":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			lb, lknown := lv.Bool()
			if lknown && lb {
				return NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			rb, rknown := rv.Bool()
			if rknown && rb {
				return NewBool(true), nil
			}
			if !lknown || !rknown {
				return Null, nil
			}
			return NewBool(false), nil
		}, nil
	case "||":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return NewText(lv.String() + rv.String()), nil
		}, nil
	case "LIKE":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return NewBool(likeMatch(lv.String(), rv.String())), nil
		}, nil
	}
	return nil, fmt.Errorf("sqlengine: unknown binary operator %q", op)
}

func compileCase(n *CaseExpr, ctx *compileCtx) (compiledExpr, error) {
	var operand compiledExpr
	var err error
	if n.Operand != nil {
		operand, err = compileExpr(n.Operand, ctx)
		if err != nil {
			return nil, err
		}
	}
	whens := make([]compiledExpr, len(n.Whens))
	thens := make([]compiledExpr, len(n.Whens))
	for i, w := range n.Whens {
		whens[i], err = compileExpr(w.When, ctx)
		if err != nil {
			return nil, err
		}
		thens[i], err = compileExpr(w.Then, ctx)
		if err != nil {
			return nil, err
		}
	}
	var els compiledExpr
	if n.Else != nil {
		els, err = compileExpr(n.Else, ctx)
		if err != nil {
			return nil, err
		}
	}
	return func(row Row) (Value, error) {
		var opv Value
		if operand != nil {
			var err error
			opv, err = operand(row)
			if err != nil {
				return Null, err
			}
		}
		for i := range whens {
			wv, err := whens[i](row)
			if err != nil {
				return Null, err
			}
			matched := false
			if operand != nil {
				cmp, ok := CompareSQL(opv, wv)
				matched = ok && cmp == 0
			} else {
				b, known := wv.Bool()
				matched = known && b
			}
			if matched {
				return thens[i](row)
			}
		}
		if els != nil {
			return els(row)
		}
		return Null, nil
	}, nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char),
// case-insensitively as in SQLite's default collation for ASCII.
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// exprReferencesAggregate walks an expression looking for aggregate calls.
func exprReferencesAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if fc, ok := x.(*FuncCall); ok && isAggregateName(fc.Name) {
			found = true
		}
	})
	return found
}

// walkExpr visits e and all descendants.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *BinaryExpr:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *UnaryExpr:
		walkExpr(n.X, fn)
	case *FuncCall:
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *CaseExpr:
		walkExpr(n.Operand, fn)
		for _, w := range n.Whens {
			walkExpr(w.When, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(n.Else, fn)
	case *IsNullExpr:
		walkExpr(n.X, fn)
	case *InExpr:
		walkExpr(n.X, fn)
		for _, it := range n.List {
			walkExpr(it, fn)
		}
	case *BetweenExpr:
		walkExpr(n.X, fn)
		walkExpr(n.Lo, fn)
		walkExpr(n.Hi, fn)
	case *CastExpr:
		walkExpr(n.X, fn)
	}
}
