package sqlengine

import "testing"

// FuzzLex feeds arbitrary strings to the SQL lexer. Lex errors are
// expected on garbage; panics or hangs are bugs.
func FuzzLex(f *testing.F) {
	f.Add("SELECT s, r, i FROM state")
	f.Add("WITH t AS (SELECT 1 AS x) SELECT x FROM t;")
	f.Add("SELECT 1e309, .5, 0x, 'unterminated")
	f.Add(`SELECT "quoted ident", b.s & 3 | 4 # 5 FROM b`)
	f.Add("-- comment only\n")
	f.Add("SELECT /* nested? /* */ 1")
	f.Add("\x00\xff\xfe")
	f.Add("((((((((((")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		toks, err := lexSQL(src)
		if err != nil {
			return
		}
		// A successful lex always terminates the stream with EOF.
		if len(toks) == 0 {
			t.Fatal("lexSQL returned no tokens and no error")
		}
	})
}

// FuzzParse feeds arbitrary strings to the SQL parser (lexer
// included). Parse errors are expected; panics, hangs, or unbounded
// recursion are bugs.
func FuzzParse(f *testing.F) {
	f.Add("SELECT s, r, i FROM state WHERE r != 0 ORDER BY s")
	f.Add("WITH g0 AS (SELECT s # 1 AS s, r, i FROM state) SELECT * FROM g0;")
	f.Add("SELECT a.s, a.r*b.r - a.i*b.i AS r FROM a JOIN b ON a.s = b.s")
	f.Add("CREATE TABLE state (s INTEGER, r REAL, i REAL); INSERT INTO state VALUES (0, 1.0, 0.0);")
	f.Add("SELECT CASE WHEN s & 1 = 0 THEN r ELSE -r END FROM state GROUP BY s HAVING SUM(r) > 0")
	f.Add("SELECT ((((((1))))))")
	f.Add("SELECT FROM WHERE GROUP")
	f.Add(";;;;")
	f.Add("SELECT 1 UNION ALL SELECT 2")
	// Chained multi-stage shapes: the fused CTAS statements that
	// core.FusedStatements emits (CREATE TABLE ... AS WITH interior
	// gate stages as CTEs), plus degenerate variants.
	f.Add(`CREATE TABLE q_state_2 AS WITH q_state_1 AS (
  SELECT ((t.s & ~1) | h.out_s) AS s,
         SUM((t.r * h.r) - (t.i * h.i)) AS r,
         SUM((t.r * h.i) + (t.i * h.r)) AS i
  FROM t JOIN h ON h.in_s = (t.s & 1)
  GROUP BY ((t.s & ~1) | h.out_s)
)
SELECT ((q_state_1.s & ~2) | (h.out_s << 1)) AS s,
       SUM((q_state_1.r * h.r) - (q_state_1.i * h.i)) AS r,
       SUM((q_state_1.r * h.i) + (q_state_1.i * h.r)) AS i
FROM q_state_1 JOIN h ON h.in_s = ((q_state_1.s >> 1) & 1)
GROUP BY ((q_state_1.s & ~2) | (h.out_s << 1));
DROP TABLE q_state_0;`)
	f.Add("CREATE TABLE t2 AS WITH c1 AS (SELECT s, r, i FROM t0), c2 AS (SELECT s, r, i FROM c1) SELECT * FROM c2")
	f.Add("CREATE TABLE x AS WITH x AS (SELECT 1) SELECT * FROM x;CREATE TABLE y AS WITH a AS (SELECT * FROM x) SELECT * FROM a")
	f.Add("CREATE TABLE t1 AS WITH c1 AS (SELECT s FROM t0 GROUP BY s HAVING SUM(r) > 0.0) SELECT s FROM c1 ORDER BY s;CREATE TABLE t2 AS SELECT * FROM t1;DROP TABLE t1;")
	f.Add("CREATE TABLE AS WITH AS (SELECT) SELECT")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		stmts, err := ParseScript(src)
		if err != nil {
			return
		}
		for i, st := range stmts {
			if st == nil {
				t.Fatalf("ParseScript returned nil statement %d without error", i)
			}
		}
	})
}
