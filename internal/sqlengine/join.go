package sqlengine

import (
	"fmt"
	"hash/fnv"
)

// Limits for recursive grace partitioning.
const (
	maxGraceDepth = 8
	defaultFanout = 16
	mapEntryBytes = 64 // estimated per-entry map bookkeeping overhead
)

// joinNode implements INNER, LEFT, and CROSS joins. When equi-key pairs
// were extracted from the ON clause it runs a hash join that degrades to
// recursive grace partitioning under memory pressure; otherwise it runs a
// block nested-loop join.
type joinNode struct {
	left, right planNode
	joinType    string // "INNER", "LEFT", "CROSS"
	leftKeys    []Expr // parallel with rightKeys
	rightKeys   []Expr
	residual    Expr // may be nil
}

func (n *joinNode) schema() planSchema {
	ls := n.left.schema()
	rs := n.right.schema()
	out := make(planSchema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	out = append(out, rs...)
	return out
}

func (n *joinNode) open(ctx *execCtx) (rowIter, error) {
	ls, rs := n.left.schema(), n.right.schema()
	var residual compiledExpr
	if n.residual != nil {
		var err error
		residual, err = ctx.compile(n.residual, n.schema())
		if err != nil {
			return nil, err
		}
	}

	leftIter, err := n.left.open(ctx)
	if err != nil {
		return nil, err
	}
	rightIter, err := n.right.open(ctx)
	if err != nil {
		leftIter.Close()
		return nil, err
	}

	exec := &joinExec{
		ctx:        ctx,
		joinType:   n.joinType,
		residual:   residual,
		leftWidth:  len(ls),
		rightWidth: len(rs),
	}

	if len(n.leftKeys) > 0 {
		lk, err := compileAll(ctx, n.leftKeys, ls)
		if err != nil {
			leftIter.Close()
			rightIter.Close()
			return nil, err
		}
		rk, err := compileAll(ctx, n.rightKeys, rs)
		if err != nil {
			leftIter.Close()
			rightIter.Close()
			return nil, err
		}
		exec.nkeys = len(lk)
		out, err := exec.hashJoin(leftIter, rightIter, lk, rk)
		leftIter.Close()
		rightIter.Close()
		if err != nil {
			return nil, err
		}
		return newOwnedStoreIter(out)
	}

	out, err := exec.nestedLoop(leftIter, rightIter)
	leftIter.Close()
	rightIter.Close()
	if err != nil {
		return nil, err
	}
	return newOwnedStoreIter(out)
}

func compileAll(ctx *execCtx, exprs []Expr, schema planSchema) ([]compiledExpr, error) {
	out := make([]compiledExpr, len(exprs))
	for i, e := range exprs {
		c, err := ctx.compile(e, schema)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// newOwnedStoreIter wraps a result store in an iterator that releases it
// on Close.
func newOwnedStoreIter(store *RowStore) (rowIter, error) {
	it, err := store.Iterator()
	if err != nil {
		store.Release()
		return nil, err
	}
	return &storeScanIter{it: it, store: store, own: true}, nil
}

type joinExec struct {
	ctx        *execCtx
	joinType   string
	residual   compiledExpr
	nkeys      int
	leftWidth  int
	rightWidth int
}

// hashJoin materializes both inputs with their join keys prepended, then
// joins recursively.
func (j *joinExec) hashJoin(left, right rowIter, lk, rk []compiledExpr) (*RowStore, error) {
	leftStore, err := j.materializeKeyed(left, lk)
	if err != nil {
		return nil, err
	}
	defer leftStore.Release()
	rightStore, err := j.materializeKeyed(right, rk)
	if err != nil {
		return nil, err
	}
	defer rightStore.Release()

	out := newRowStore(j.ctx.env)
	if err := j.joinStores(leftStore, rightStore, 0, out); err != nil {
		out.Release()
		return nil, err
	}
	if err := out.Freeze(); err != nil {
		out.Release()
		return nil, err
	}
	return out, nil
}

// materializeKeyed stores each input row as [key values..., original row...].
func (j *joinExec) materializeKeyed(it rowIter, keys []compiledExpr) (*RowStore, error) {
	store := newRowStore(j.ctx.env)
	for {
		row, ok, err := it.Next()
		if err != nil {
			store.Release()
			return nil, err
		}
		if !ok {
			break
		}
		keyed := make(Row, len(keys)+len(row))
		for i, k := range keys {
			v, err := k(row)
			if err != nil {
				store.Release()
				return nil, err
			}
			keyed[i] = v
		}
		copy(keyed[len(keys):], row)
		if err := store.Append(keyed); err != nil {
			store.Release()
			return nil, err
		}
	}
	if err := store.Freeze(); err != nil {
		store.Release()
		return nil, err
	}
	return store, nil
}

// keyOf extracts the encoded join key of a keyed row; ok=false when any
// key component is NULL (SQL equi-joins never match on NULL).
func (j *joinExec) keyOf(keyed Row) (string, bool) {
	for _, v := range keyed[:j.nkeys] {
		if v.IsNull() {
			return "", false
		}
	}
	return encodeRowKey(keyed[:j.nkeys]), true
}

// joinStores joins two keyed stores, appending combined rows to out. It
// builds a hash table on the right input; on memory pressure it
// partitions both sides and recurses.
func (j *joinExec) joinStores(leftStore, rightStore *RowStore, depth int, out *RowStore) error {
	budget := j.ctx.env.budget
	build := make(map[string][]Row)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		build = nil
	}

	it, err := rightStore.Iterator()
	if err != nil {
		return err
	}
	overflow := false
	for {
		keyed, ok, err := it.Next()
		if err != nil {
			releaseAll()
			return err
		}
		if !ok {
			break
		}
		key, valid := j.keyOf(keyed)
		if !valid {
			continue
		}
		need := rowBytes(keyed) + mapEntryBytes
		if !budget.tryReserve(need) {
			// Operators may claim a small working floor even when
			// tables hold the whole budget; otherwise partitioning
			// could never make progress.
			if reserved+need > j.ctx.env.workingFloor {
				overflow = true
				break
			}
			budget.reserveForce(need)
		}
		reserved += need
		orig := keyed[j.nkeys:]
		build[key] = append(build[key], orig)
	}

	if overflow {
		releaseAll()
		if !j.ctx.env.spillEnabled {
			return errBudget
		}
		if depth >= maxGraceDepth {
			return fmt.Errorf("sqlengine: hash join exceeded maximum partitioning depth %d", maxGraceDepth)
		}
		return j.partitionAndRecurse(leftStore, rightStore, depth, out)
	}
	defer releaseAll()

	// Probe with the left input.
	lit, err := leftStore.Iterator()
	if err != nil {
		return err
	}
	for {
		keyed, ok, err := lit.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		leftRow := keyed[j.nkeys:]
		key, valid := j.keyOf(keyed)
		matched := false
		if valid {
			for _, rightRow := range build[key] {
				combined := make(Row, 0, len(leftRow)+len(rightRow))
				combined = append(combined, leftRow...)
				combined = append(combined, rightRow...)
				pass, err := j.passesResidual(combined)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
				matched = true
				if err := out.Append(combined); err != nil {
					return err
				}
			}
		}
		if !matched && j.joinType == "LEFT" {
			if err := out.Append(nullExtend(leftRow, j.rightWidth)); err != nil {
				return err
			}
		}
	}
}

func (j *joinExec) passesResidual(combined Row) (bool, error) {
	if j.residual == nil {
		return true, nil
	}
	v, err := j.residual(combined)
	if err != nil {
		return false, err
	}
	b, known := v.Bool()
	return known && b, nil
}

func nullExtend(left Row, rightWidth int) Row {
	combined := make(Row, len(left)+rightWidth)
	copy(combined, left)
	for i := len(left); i < len(combined); i++ {
		combined[i] = Null
	}
	return combined
}

// partitionAndRecurse splits both keyed stores into fanout partitions by
// key hash (salted per depth) and joins matching pairs.
func (j *joinExec) partitionAndRecurse(leftStore, rightStore *RowStore, depth int, out *RowStore) error {
	fanout := defaultFanout
	lparts, err := j.partition(leftStore, fanout, depth, true)
	if err != nil {
		return err
	}
	defer releaseStores(lparts)
	rparts, err := j.partition(rightStore, fanout, depth, false)
	if err != nil {
		return err
	}
	defer releaseStores(rparts)
	for i := 0; i < fanout; i++ {
		if err := j.joinStores(lparts[i], rparts[i], depth+1, out); err != nil {
			return err
		}
	}
	return nil
}

// partition distributes keyed rows by hash. keepNullKeys controls whether
// rows with NULL keys are kept (needed on the left side of LEFT joins so
// they can be null-extended) — they land in partition 0.
func (j *joinExec) partition(store *RowStore, fanout, depth int, keepNullKeys bool) ([]*RowStore, error) {
	parts := make([]*RowStore, fanout)
	for i := range parts {
		parts[i] = newRowStore(j.ctx.env)
	}
	it, err := store.Iterator()
	if err != nil {
		releaseStores(parts)
		return nil, err
	}
	for {
		keyed, ok, err := it.Next()
		if err != nil {
			releaseStores(parts)
			return nil, err
		}
		if !ok {
			break
		}
		key, valid := j.keyOf(keyed)
		if !valid {
			if !keepNullKeys || j.joinType != "LEFT" {
				continue
			}
			if err := parts[0].Append(keyed); err != nil {
				releaseStores(parts)
				return nil, err
			}
			continue
		}
		idx := hashPartition(key, depth, fanout)
		if err := parts[idx].Append(keyed); err != nil {
			releaseStores(parts)
			return nil, err
		}
	}
	for _, p := range parts {
		if err := p.Freeze(); err != nil {
			releaseStores(parts)
			return nil, err
		}
	}
	return parts, nil
}

func releaseStores(stores []*RowStore) {
	for _, s := range stores {
		if s != nil {
			s.Release()
		}
	}
}

func hashPartition(key string, depth, fanout int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	// FNV-1a's low bits correlate for short sequential keys, which
	// makes recursive partitioning degenerate (a bucket's keys all land
	// in the same sub-bucket). A splitmix64 finalizer seeded by depth
	// decorrelates the levels.
	x := h.Sum64() + uint64(depth)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(fanout))
}

// nestedLoop joins without equi keys: the right side is materialized and
// rescanned per left row.
func (j *joinExec) nestedLoop(left, right rowIter) (*RowStore, error) {
	rightStore, err := materialize(j.ctx.env, right)
	if err != nil {
		return nil, err
	}
	defer rightStore.Release()

	out := newRowStore(j.ctx.env)
	fail := func(err error) (*RowStore, error) {
		out.Release()
		return nil, err
	}
	for {
		leftRow, ok, err := left.Next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		matched := false
		rit, err := rightStore.Iterator()
		if err != nil {
			return fail(err)
		}
		for {
			rightRow, rok, err := rit.Next()
			if err != nil {
				return fail(err)
			}
			if !rok {
				break
			}
			combined := make(Row, 0, len(leftRow)+len(rightRow))
			combined = append(combined, leftRow...)
			combined = append(combined, rightRow...)
			pass, err := j.passesResidual(combined)
			if err != nil {
				return fail(err)
			}
			if !pass {
				continue
			}
			matched = true
			if err := out.Append(combined); err != nil {
				return fail(err)
			}
		}
		if !matched && j.joinType == "LEFT" {
			if err := out.Append(nullExtend(leftRow, j.rightWidth)); err != nil {
				return fail(err)
			}
		}
	}
	if err := out.Freeze(); err != nil {
		return fail(err)
	}
	return out, nil
}
