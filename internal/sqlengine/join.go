package sqlengine

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"
)

// Limits for recursive grace partitioning.
const (
	maxGraceDepth = 8
	defaultFanout = 16
	mapEntryBytes = 64 // estimated per-entry map bookkeeping overhead
)

// joinNode implements INNER, LEFT, and CROSS joins. When equi-key pairs
// were extracted from the ON clause it runs a hash join that degrades to
// recursive grace partitioning under memory pressure; otherwise it runs a
// block nested-loop join. Inputs are consumed as batches with vectorized
// key evaluation; the join itself is a blocking operator that emits its
// result as a batched store scan.
type joinNode struct {
	left, right planNode
	joinType    string // "INNER", "LEFT", "CROSS"
	leftKeys    []Expr // parallel with rightKeys
	rightKeys   []Expr
	residual    Expr // may be nil
	// strategy is the cost model's execution choice: joinAuto tries the
	// in-memory streaming build; joinGrace goes straight to the
	// grace-partitioned out-of-core join (chosen when the estimated
	// build side cannot fit the memory budget).
	strategy joinStrategy
	// buildHint pre-sizes the build-side hash table (0 = no hint).
	buildHint int64
	// flipped marks a build-side swap applied by the optimizer.
	flipped bool
	est     *nodeEst
}

func (n *joinNode) schema() planSchema {
	ls := n.left.schema()
	rs := n.right.schema()
	out := make(planSchema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	out = append(out, rs...)
	return out
}

func (n *joinNode) open(ctx *execCtx) (batchIter, error) {
	ls, rs := n.left.schema(), n.right.schema()
	var residual compiledExpr
	if n.residual != nil {
		var err error
		residual, err = ctx.compile(n.residual, n.schema())
		if err != nil {
			return nil, err
		}
	}

	leftIter, err := n.left.open(ctx)
	if err != nil {
		return nil, err
	}
	rightIter, err := n.right.open(ctx)
	if err != nil {
		leftIter.Close()
		return nil, err
	}

	exec := &joinExec{
		ctx:        ctx,
		joinType:   n.joinType,
		residual:   residual,
		leftWidth:  len(ls),
		rightWidth: len(rs),
		buildHint:  n.buildHint,
	}

	if len(n.leftKeys) > 0 {
		lk, err := ctx.compileVecAll(n.leftKeys, ls)
		if err != nil {
			leftIter.Close()
			rightIter.Close()
			return nil, err
		}
		rk, err := ctx.compileVecAll(n.rightKeys, rs)
		if err != nil {
			leftIter.Close()
			rightIter.Close()
			return nil, err
		}
		exec.nkeys = len(lk)
		if n.strategy == joinGrace && ctx.env.spillEnabled {
			return exec.openGraceJoin(leftIter, rightIter, lk, rk)
		}
		return exec.openHashJoin(leftIter, rightIter, lk, rk)
	}

	out, err := exec.nestedLoop(leftIter, rightIter)
	leftIter.Close()
	rightIter.Close()
	if err != nil {
		return nil, err
	}
	return newOwnedStoreIter(out)
}

// openHashJoin builds a hash table from the right input and, when it
// fits in memory, streams the left input through it batch by batch —
// no left-side materialization, no output store, and no per-match row
// allocation. When the build side overflows the budget it falls back to
// the blocking grace hash join over spillable keyed stores.
func (j *joinExec) openHashJoin(left, right batchIter, lk, rk []vecExpr) (batchIter, error) {
	build, reserved, rightStore, err := j.buildRight(right, rk)
	right.Close()
	if err != nil {
		left.Close()
		return nil, err
	}
	if rightStore == nil {
		return &hashProbeIter{j: j, left: left, lk: lk, build: build, reserved: reserved,
			out:      newRowBatch(j.leftWidth + j.rightWidth),
			combined: make(Row, j.leftWidth+j.rightWidth),
			keyBuf:   make(Row, j.nkeys),
		}, nil
	}
	// Overflow: grace-partition both sides out of core.
	defer rightStore.Release()
	leftStore, err := j.materializeKeyed(left, lk)
	left.Close()
	if err != nil {
		return nil, err
	}
	defer leftStore.Release()
	out := j.ctx.env.newStore()
	if err := j.joinStores(leftStore, rightStore, 0, out); err != nil {
		out.Release()
		return nil, err
	}
	if err := out.Freeze(); err != nil {
		out.Release()
		return nil, err
	}
	return newOwnedStoreIter(out)
}

// openGraceJoin is the pre-chosen out-of-core path: both sides are
// materialized as keyed stores and grace-partition joined, skipping the
// in-memory build attempt the cost model determined could never fit.
func (j *joinExec) openGraceJoin(left, right batchIter, lk, rk []vecExpr) (batchIter, error) {
	rightStore, err := j.materializeKeyed(right, rk)
	right.Close()
	if err != nil {
		left.Close()
		return nil, err
	}
	defer rightStore.Release()
	leftStore, err := j.materializeKeyed(left, lk)
	left.Close()
	if err != nil {
		return nil, err
	}
	defer leftStore.Release()
	out := j.ctx.env.newStore()
	if err := j.joinStores(leftStore, rightStore, 0, out); err != nil {
		out.Release()
		return nil, err
	}
	if err := out.Freeze(); err != nil {
		out.Release()
		return nil, err
	}
	return newOwnedStoreIter(out)
}

// buildRight drains the right input into an in-memory build table of
// keyed rows. On success rightStore is nil and the caller owns the
// returned budget reservation. On budget overflow all reservations are
// released and every right row (the ones already tabled plus the rest of
// the stream) is returned as a keyed store for grace partitioning.
func (j *joinExec) buildRight(right batchIter, rk []vecExpr) (*buildTable, int64, tableStore, error) {
	budget := j.ctx.env.budget
	build := newBuildTable(j.nkeys, j.buildHint)
	var reserved int64
	keyCols := make([]colVec, j.nkeys)
	overflow := false
	var pending []Row // keyed rows not yet tabled when overflow hits
	for !overflow {
		if err := j.ctx.cancelled(); err != nil {
			budget.release(reserved)
			return nil, 0, nil, err
		}
		b, err := right.NextBatch()
		if err != nil {
			budget.release(reserved)
			return nil, 0, nil, err
		}
		if b == nil {
			break
		}
		sel := b.selection()
		for i, k := range rk {
			col, err := k(b, sel)
			if err != nil {
				budget.release(reserved)
				return nil, 0, nil, err
			}
			keyCols[i] = col
		}
		width := b.width()
		for si, pos := range sel {
			keyed := make(Row, j.nkeys+width)
			for i := 0; i < j.nkeys; i++ {
				keyed[i] = keyCols[i][pos]
			}
			b.gather(pos, keyed[j.nkeys:])
			if !build.hasValidKey(keyed) {
				continue // NULL keys never match
			}
			need := rowBytes(keyed) + mapEntryBytes
			if !budget.tryReserve(need) {
				// See joinStores: blocking operators may claim a small
				// working floor before giving up.
				if reserved+need > j.ctx.env.workingFloor {
					overflow = true
					// Collect the rest of this batch, then spill.
					for _, p2 := range sel[si:] {
						keyed2 := make(Row, j.nkeys+width)
						for i := 0; i < j.nkeys; i++ {
							keyed2[i] = keyCols[i][p2]
						}
						b.gather(p2, keyed2[j.nkeys:])
						pending = append(pending, keyed2)
					}
					break
				}
				budget.reserveForce(need)
			}
			reserved += need
			build.insert(keyed, j)
		}
	}
	if !overflow {
		return build, reserved, nil, nil
	}
	budget.release(reserved)
	if !j.ctx.env.spillEnabled {
		return nil, 0, nil, errBudget
	}
	// Dump the tabled rows plus the remainder of the stream into a keyed
	// store; map order is irrelevant because downstream access is always
	// per-key.
	store := j.ctx.env.newStore()
	fail := func(err error) (*buildTable, int64, tableStore, error) {
		store.Release()
		return nil, 0, nil, err
	}
	for _, rows := range build.ints {
		for _, keyed := range rows {
			if err := store.Append(keyed); err != nil {
				return fail(err)
			}
		}
	}
	for _, rows := range build.strs {
		for _, keyed := range rows {
			if err := store.Append(keyed); err != nil {
				return fail(err)
			}
		}
	}
	for _, keyed := range pending {
		if err := store.Append(keyed); err != nil {
			return fail(err)
		}
	}
	// Drain the rest of the right input.
	for {
		if err := j.ctx.cancelled(); err != nil {
			return fail(err)
		}
		b, err := right.NextBatch()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		sel := b.selection()
		for i, k := range rk {
			col, err := k(b, sel)
			if err != nil {
				return fail(err)
			}
			keyCols[i] = col
		}
		width := b.width()
		for _, pos := range sel {
			keyed := make(Row, j.nkeys+width)
			for i := 0; i < j.nkeys; i++ {
				keyed[i] = keyCols[i][pos]
			}
			b.gather(pos, keyed[j.nkeys:])
			if err := store.Append(keyed); err != nil {
				return fail(err)
			}
		}
	}
	if err := store.Freeze(); err != nil {
		return fail(err)
	}
	return nil, 0, store, nil
}

// hashProbeIter streams left batches through the in-memory build table,
// emitting combined rows into a reusable output batch. It resumes
// mid-row across NextBatch calls so no output batch exceeds batchSize.
type hashProbeIter struct {
	j        *joinExec
	left     batchIter
	lk       []vecExpr
	build    *buildTable
	reserved int64
	out      *rowBatch
	combined Row // scratch [left values..., right values...]
	keyBuf   Row // scratch probe key

	cur      *rowBatch
	sel      []int
	selPos   int
	keyCols  []colVec
	inRow    bool
	matches  []Row
	matchPos int
	matched  bool
	closed   bool
}

func (it *hashProbeIter) NextBatch() (*rowBatch, error) {
	j := it.j
	lw := j.leftWidth
	it.out.reset()
	for {
		if it.cur == nil {
			b, err := it.left.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if it.keyCols == nil {
				it.keyCols = make([]colVec, j.nkeys)
			}
			sel := b.selection()
			for i, k := range it.lk {
				col, err := k(b, sel)
				if err != nil {
					return nil, err
				}
				it.keyCols[i] = col
			}
			it.cur, it.sel, it.selPos = b, sel, 0
		}
		for it.selPos < len(it.sel) {
			pos := it.sel[it.selPos]
			if !it.inRow {
				it.cur.gather(pos, it.combined[:lw])
				for i := 0; i < j.nkeys; i++ {
					it.keyBuf[i] = it.keyCols[i][pos]
				}
				it.matches = it.build.lookup(it.keyBuf, j)
				it.matchPos, it.matched, it.inRow = 0, false, true
			}
			for it.matchPos < len(it.matches) {
				rightKeyed := it.matches[it.matchPos]
				it.matchPos++
				copy(it.combined[lw:], rightKeyed[j.nkeys:])
				pass, err := j.passesResidual(it.combined)
				if err != nil {
					return nil, err
				}
				if !pass {
					continue
				}
				it.matched = true
				it.out.appendRow(it.combined)
				if it.out.full() {
					return it.out, nil
				}
			}
			if !it.matched && j.joinType == "LEFT" {
				for i := lw; i < len(it.combined); i++ {
					it.combined[i] = Null
				}
				it.out.appendRow(it.combined)
			}
			it.inRow = false
			it.selPos++
			if it.out.full() {
				return it.out, nil
			}
		}
		it.cur = nil
	}
	if it.out.n == 0 {
		return nil, nil
	}
	return it.out, nil
}

func (it *hashProbeIter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.j.ctx.env.budget.release(it.reserved)
	it.build = nil
	it.left.Close()
}

// openParallel morselizes the probe side of an in-memory hash join: the
// build table is constructed once (serially — it is normally the small
// gate table) and shared read-only by per-worker probe streams over the
// left child's morsels. Falls back to the serial path when the probe
// side cannot be morselized or the build overflows the budget (the
// grace-partitioned join is inherently blocking and stays serial).
func (n *joinNode) openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error) {
	if len(n.leftKeys) == 0 || n.strategy == joinGrace {
		return nil, false, nil
	}
	leftStreams, ok, err := openMorselStreams(n.left, ctx, workers)
	if err != nil || !ok {
		return nil, ok, err
	}
	ls, rs := n.left.schema(), n.right.schema()
	exec := &joinExec{
		ctx:        ctx,
		joinType:   n.joinType,
		nkeys:      len(n.leftKeys),
		leftWidth:  len(ls),
		rightWidth: len(rs),
		buildHint:  n.buildHint,
	}
	rk, err := ctx.compileVecAll(n.rightKeys, rs)
	if err != nil {
		closeStreams(leftStreams)
		return nil, false, err
	}
	rightIter, err := n.right.open(ctx)
	if err != nil {
		closeStreams(leftStreams)
		return nil, false, err
	}
	build, reserved, rightStore, err := exec.buildRight(rightIter, rk)
	rightIter.Close()
	if err != nil {
		closeStreams(leftStreams)
		return nil, false, err
	}
	if rightStore != nil {
		// Build side overflowed: hand everything back and let the caller
		// re-run the serial grace-partitioned join.
		rightStore.Release()
		closeStreams(leftStreams)
		return nil, false, nil
	}
	shared := &sharedBuild{build: build, reserved: reserved, env: ctx.env}
	shared.refs.Store(int32(len(leftStreams)))
	out := make([]morselStream, len(leftStreams))
	failStreams := func(err error) ([]morselStream, bool, error) {
		closeStreams(out)
		for i := range out {
			if out[i] == nil {
				shared.release()
				leftStreams[i].Close()
			}
		}
		return nil, false, err
	}
	for i, c := range leftStreams {
		lk, err := ctx.compileVecAll(n.leftKeys, ls)
		if err != nil {
			return failStreams(err)
		}
		var residual compiledExpr
		if n.residual != nil {
			if residual, err = ctx.compile(n.residual, n.schema()); err != nil {
				return failStreams(err)
			}
		}
		out[i] = &probeMorselStream{
			child:    c,
			shared:   shared,
			exec:     exec,
			lk:       lk,
			residual: residual,
			out:      newRowBatch(exec.leftWidth + exec.rightWidth),
			combined: make(Row, exec.leftWidth+exec.rightWidth),
			keyBuf:   make(Row, exec.nkeys),
		}
	}
	return out, true, nil
}

// sharedBuild refcounts a hash-join build table shared by concurrent
// probe streams; the budget reservation is released when the last
// stream closes.
type sharedBuild struct {
	build    *buildTable
	reserved int64
	env      *storageEnv
	refs     atomic.Int32
}

func (s *sharedBuild) release() {
	if s.refs.Add(-1) == 0 {
		s.env.budget.release(s.reserved)
		s.build = nil
	}
}

// probeMorselStream streams one worker's share of probe morsels through
// the shared build table. The emit logic mirrors hashProbeIter,
// resuming mid-row so no output batch exceeds batchSize.
type probeMorselStream struct {
	child    morselStream
	shared   *sharedBuild
	exec     *joinExec
	lk       []vecExpr
	residual compiledExpr
	out      *rowBatch
	combined Row
	keyBuf   Row

	cur      *rowBatch
	sel      []int
	selPos   int
	keyCols  []colVec
	inRow    bool
	matches  []Row
	matchPos int
	matched  bool
	closed   bool
}

func (s *probeMorselStream) NextMorsel() (int, bool, error) {
	s.cur, s.sel, s.selPos = nil, nil, 0
	s.inRow, s.matches, s.matchPos = false, nil, 0
	return s.child.NextMorsel()
}

func (s *probeMorselStream) NextBatch() (*rowBatch, error) {
	j := s.exec
	lw := j.leftWidth
	s.out.reset()
	for {
		if s.cur == nil {
			b, err := s.child.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if s.keyCols == nil {
				s.keyCols = make([]colVec, j.nkeys)
			}
			sel := b.selection()
			for i, k := range s.lk {
				col, err := k(b, sel)
				if err != nil {
					return nil, err
				}
				s.keyCols[i] = col
			}
			s.cur, s.sel, s.selPos = b, sel, 0
		}
		for s.selPos < len(s.sel) {
			pos := s.sel[s.selPos]
			if !s.inRow {
				s.cur.gather(pos, s.combined[:lw])
				for i := 0; i < j.nkeys; i++ {
					s.keyBuf[i] = s.keyCols[i][pos]
				}
				s.matches = s.shared.build.lookup(s.keyBuf, j)
				s.matchPos, s.matched, s.inRow = 0, false, true
			}
			for s.matchPos < len(s.matches) {
				rightKeyed := s.matches[s.matchPos]
				s.matchPos++
				copy(s.combined[lw:], rightKeyed[j.nkeys:])
				pass, err := passesResidual(s.residual, s.combined)
				if err != nil {
					return nil, err
				}
				if !pass {
					continue
				}
				s.matched = true
				s.out.appendRow(s.combined)
				if s.out.full() {
					return s.out, nil
				}
			}
			if !s.matched && j.joinType == "LEFT" {
				for i := lw; i < len(s.combined); i++ {
					s.combined[i] = Null
				}
				s.out.appendRow(s.combined)
			}
			s.inRow = false
			s.selPos++
			if s.out.full() {
				return s.out, nil
			}
		}
		s.cur = nil
	}
	if s.out.n == 0 {
		return nil, nil
	}
	return s.out, nil
}

func (s *probeMorselStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.shared.release()
	s.child.Close()
}

type joinExec struct {
	ctx        *execCtx
	joinType   string
	residual   compiledExpr
	nkeys      int
	leftWidth  int
	rightWidth int
	// buildHint pre-sizes the in-memory build table (0 = no hint).
	buildHint int64
}

// materializeKeyed stores each input row as [key values..., original
// row...]. Key expressions are evaluated batch-at-a-time.
func (j *joinExec) materializeKeyed(it batchIter, keys []vecExpr) (tableStore, error) {
	store := j.ctx.env.newStore()
	nk := len(keys)
	keyCols := make([]colVec, nk)
	for {
		if err := j.ctx.cancelled(); err != nil {
			store.Release()
			return nil, err
		}
		b, err := it.NextBatch()
		if err != nil {
			store.Release()
			return nil, err
		}
		if b == nil {
			break
		}
		sel := b.selection()
		for i, k := range keys {
			col, err := k(b, sel)
			if err != nil {
				store.Release()
				return nil, err
			}
			keyCols[i] = col
		}
		width := b.width()
		for _, pos := range sel {
			keyed := make(Row, nk+width)
			for i := 0; i < nk; i++ {
				keyed[i] = keyCols[i][pos]
			}
			b.gather(pos, keyed[nk:])
			if err := store.Append(keyed); err != nil {
				store.Release()
				return nil, err
			}
		}
	}
	if err := store.Freeze(); err != nil {
		store.Release()
		return nil, err
	}
	return store, nil
}

// intKey normalizes a value to the int64 hash key used by the
// single-column fast paths. It mirrors encodeValueKey: INTEGER, BOOLEAN
// and integral REAL values that compare SQL-equal map to the same int64,
// and any value it rejects (NULL, TEXT, fractional REAL) can never be
// SQL-equal to one it accepts, so splitting the hash table by
// normalizability preserves grouping semantics exactly.
func intKey(v Value) (int64, bool) {
	switch v.T {
	case TypeInt, TypeBool:
		return v.I, true
	case TypeFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1<<62 {
			return int64(v.F), true
		}
	}
	return 0, false
}

// keyOf extracts the encoded join key of a keyed row; ok=false when any
// key component is NULL (SQL equi-joins never match on NULL).
func (j *joinExec) keyOf(keyed Row) (string, bool) {
	for _, v := range keyed[:j.nkeys] {
		if v.IsNull() {
			return "", false
		}
	}
	return encodeRowKey(keyed[:j.nkeys]), true
}

// buildTable is the hash-join build side, holding full keyed rows
// ([key values..., original row...]) so an overflowing build can be
// dumped back to a keyed store for grace partitioning. Single-column
// integer-like keys live in an int64-keyed map (no per-row key encoding
// or string allocation); everything else falls back to the encoded
// string key.
type buildTable struct {
	nkeys int
	ints  map[int64][]Row
	strs  map[string][]Row
}

// newBuildTable allocates the build hash table. hint, when positive, is
// the cost model's estimated build cardinality and pre-sizes the map so
// large builds skip the incremental rehash-and-copy growth steps.
func newBuildTable(nkeys int, hint int64) *buildTable {
	ih, sh := 0, 0
	if hint > 0 {
		if nkeys == 1 {
			ih = int(hint)
		} else {
			sh = int(hint)
		}
	}
	return &buildTable{nkeys: nkeys, ints: make(map[int64][]Row, ih), strs: make(map[string][]Row, sh)}
}

// insert files the keyed row under its join key; ok=false means a NULL
// key component (row does not participate in matches).
func (t *buildTable) insert(keyed Row, j *joinExec) bool {
	if t.nkeys == 1 {
		v := keyed[0]
		if v.IsNull() {
			return false
		}
		if ik, ok := intKey(v); ok {
			t.ints[ik] = append(t.ints[ik], keyed)
			return true
		}
	}
	key, valid := j.keyOf(keyed)
	if !valid {
		return false
	}
	t.strs[key] = append(t.strs[key], keyed)
	return true
}

// lookup returns the keyed build rows matching the probe key (the first
// nkeys values of probe are the key; extra values are ignored).
func (t *buildTable) lookup(probe Row, j *joinExec) []Row {
	if t.nkeys == 1 {
		v := probe[0]
		if v.IsNull() {
			return nil
		}
		if ik, ok := intKey(v); ok {
			return t.ints[ik]
		}
	}
	key, valid := j.keyOf(probe)
	if !valid {
		return nil
	}
	return t.strs[key]
}

// hasValidKey reports whether the keyed row has a non-NULL key.
func (t *buildTable) hasValidKey(keyed Row) bool {
	for _, v := range keyed[:t.nkeys] {
		if v.IsNull() {
			return false
		}
	}
	return true
}

// joinStores joins two keyed stores, appending combined rows to out. It
// builds a hash table on the right input; on memory pressure it
// partitions both sides and recurses.
func (j *joinExec) joinStores(leftStore, rightStore tableStore, depth int, out tableStore) error {
	budget := j.ctx.env.budget
	build := newBuildTable(j.nkeys, 0)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		build = nil
	}

	it, err := rightStore.Cursor()
	if err != nil {
		return err
	}
	overflow := false
	var seen int64
	for {
		if seen%batchSize == 0 {
			if err := j.ctx.cancelled(); err != nil {
				releaseAll()
				return err
			}
		}
		seen++
		keyed, ok, err := it.Next()
		if err != nil {
			releaseAll()
			return err
		}
		if !ok {
			break
		}
		if !build.hasValidKey(keyed) {
			continue
		}
		need := rowBytes(keyed) + mapEntryBytes
		if !budget.tryReserve(need) {
			// Operators may claim a small working floor even when
			// tables hold the whole budget; otherwise partitioning
			// could never make progress.
			if reserved+need > j.ctx.env.workingFloor {
				overflow = true
				break
			}
			budget.reserveForce(need)
		}
		reserved += need
		build.insert(keyed, j)
	}

	if overflow {
		releaseAll()
		if !j.ctx.env.spillEnabled {
			return errBudget
		}
		if depth >= maxGraceDepth {
			return fmt.Errorf("sqlengine: hash join exceeded maximum partitioning depth %d", maxGraceDepth)
		}
		return j.partitionAndRecurse(leftStore, rightStore, depth, out)
	}
	defer releaseAll()

	// Probe with the left input.
	lit, err := leftStore.Cursor()
	if err != nil {
		return err
	}
	seen = 0
	for {
		if seen%batchSize == 0 {
			if err := j.ctx.cancelled(); err != nil {
				return err
			}
		}
		seen++
		keyed, ok, err := lit.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		leftRow := keyed[j.nkeys:]
		matched := false
		for _, rightKeyed := range build.lookup(keyed, j) {
			rightRow := rightKeyed[j.nkeys:]
			combined := make(Row, 0, len(leftRow)+len(rightRow))
			combined = append(combined, leftRow...)
			combined = append(combined, rightRow...)
			pass, err := j.passesResidual(combined)
			if err != nil {
				return err
			}
			if !pass {
				continue
			}
			matched = true
			if err := out.Append(combined); err != nil {
				return err
			}
		}
		if !matched && j.joinType == "LEFT" {
			if err := out.Append(nullExtend(leftRow, j.rightWidth)); err != nil {
				return err
			}
		}
	}
}

func (j *joinExec) passesResidual(combined Row) (bool, error) {
	return passesResidual(j.residual, combined)
}

// passesResidual evaluates an optional residual join predicate.
func passesResidual(residual compiledExpr, combined Row) (bool, error) {
	if residual == nil {
		return true, nil
	}
	v, err := residual(combined)
	if err != nil {
		return false, err
	}
	b, known := v.Bool()
	return known && b, nil
}

func nullExtend(left Row, rightWidth int) Row {
	combined := make(Row, len(left)+rightWidth)
	copy(combined, left)
	for i := len(left); i < len(combined); i++ {
		combined[i] = Null
	}
	return combined
}

// partitionAndRecurse splits both keyed stores into fanout partitions by
// key hash (salted per depth) and joins matching pairs.
func (j *joinExec) partitionAndRecurse(leftStore, rightStore tableStore, depth int, out tableStore) error {
	fanout := defaultFanout
	lparts, err := j.partition(leftStore, fanout, depth, true)
	if err != nil {
		return err
	}
	defer releaseStores(lparts)
	rparts, err := j.partition(rightStore, fanout, depth, false)
	if err != nil {
		return err
	}
	defer releaseStores(rparts)
	for i := 0; i < fanout; i++ {
		if err := j.joinStores(lparts[i], rparts[i], depth+1, out); err != nil {
			return err
		}
	}
	return nil
}

// partitionIndex buckets a keyed row. Rows whose single key normalizes
// to an int64 hash through the integer mix; others hash the encoded
// string key. Both sides of a join use the same rule, so matching keys
// always land in the same partition.
func (j *joinExec) partitionIndex(keyed Row, depth, fanout int) int {
	if j.nkeys == 1 {
		if ik, ok := intKey(keyed[0]); ok {
			return hashPartitionInt(ik, depth, fanout)
		}
	}
	return hashPartition(encodeRowKey(keyed[:j.nkeys]), depth, fanout)
}

// partition distributes keyed rows by hash. keepNullKeys controls whether
// rows with NULL keys are kept (needed on the left side of LEFT joins so
// they can be null-extended) — they land in partition 0.
func (j *joinExec) partition(store tableStore, fanout, depth int, keepNullKeys bool) ([]tableStore, error) {
	parts := make([]tableStore, fanout)
	for i := range parts {
		parts[i] = j.ctx.env.newStore()
	}
	it, err := store.Cursor()
	if err != nil {
		releaseStores(parts)
		return nil, err
	}
	for {
		keyed, ok, err := it.Next()
		if err != nil {
			releaseStores(parts)
			return nil, err
		}
		if !ok {
			break
		}
		valid := true
		for _, v := range keyed[:j.nkeys] {
			if v.IsNull() {
				valid = false
				break
			}
		}
		if !valid {
			if !keepNullKeys || j.joinType != "LEFT" {
				continue
			}
			if err := parts[0].Append(keyed); err != nil {
				releaseStores(parts)
				return nil, err
			}
			continue
		}
		idx := j.partitionIndex(keyed, depth, fanout)
		if err := parts[idx].Append(keyed); err != nil {
			releaseStores(parts)
			return nil, err
		}
	}
	for _, p := range parts {
		if err := p.Freeze(); err != nil {
			releaseStores(parts)
			return nil, err
		}
	}
	return parts, nil
}

func hashPartition(key string, depth, fanout int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(mix64(h.Sum64(), depth) % uint64(fanout))
}

// hashPartitionInt buckets integer-normalized keys without encoding.
func hashPartitionInt(key int64, depth, fanout int) int {
	return int(mix64(uint64(key), depth) % uint64(fanout))
}

// mix64 is a splitmix64 finalizer seeded by depth. FNV-1a's low bits
// correlate for short sequential keys, which makes recursive
// partitioning degenerate (a bucket's keys all land in the same
// sub-bucket); the finalizer decorrelates the levels, and gives raw
// integer keys full avalanche behaviour.
func mix64(x uint64, depth int) uint64 {
	x += uint64(depth) * 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// nestedLoop joins without equi keys: the right side is materialized and
// rescanned per left batch row.
func (j *joinExec) nestedLoop(left, right batchIter) (tableStore, error) {
	rightStore, err := materialize(j.ctx, right, 0)
	if err != nil {
		return nil, err
	}
	defer rightStore.Release()

	out := j.ctx.env.newStore()
	fail := func(err error) (tableStore, error) {
		out.Release()
		return nil, err
	}
	leftBuf := make(Row, j.leftWidth)
	for {
		if err := j.ctx.cancelled(); err != nil {
			return fail(err)
		}
		b, err := left.NextBatch()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		for _, pos := range b.selection() {
			b.gather(pos, leftBuf)
			matched := false
			rit, err := rightStore.Cursor()
			if err != nil {
				return fail(err)
			}
			for {
				rightRow, rok, err := rit.Next()
				if err != nil {
					return fail(err)
				}
				if !rok {
					break
				}
				combined := make(Row, 0, len(leftBuf)+len(rightRow))
				combined = append(combined, leftBuf...)
				combined = append(combined, rightRow...)
				pass, err := j.passesResidual(combined)
				if err != nil {
					return fail(err)
				}
				if !pass {
					continue
				}
				matched = true
				if err := out.Append(combined); err != nil {
					return fail(err)
				}
			}
			if !matched && j.joinType == "LEFT" {
				if err := out.Append(nullExtend(leftBuf, j.rightWidth)); err != nil {
					return fail(err)
				}
			}
		}
	}
	if err := out.Freeze(); err != nil {
		return fail(err)
	}
	return out, nil
}
