package sqlengine

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

// The kernel tier's contract is bitwise identity: for every
// configuration the fused gate-stage loop must produce exactly the
// amplitudes the interpreted batch executor produces — same float64
// bits, same row order. These tests drive both paths over the same
// data and compare digests built from the raw bit patterns.

// kernelStateRows renders n state rows with varied, sign-mixed
// amplitudes (a pure power-of-two pattern would hide rounding-order
// bugs because every sum is exact).
func kernelStateRows(n int) []string {
	rows := make([]string, 0, n)
	for k := 0; k < n; k++ {
		r := 1.0 / float64(k+3)
		if k%3 == 1 {
			r = -r
		}
		i := float64(k%7-3) * 0.1251
		rows = append(rows, fmt.Sprintf("(%d, %v, %v)", k, r, i))
	}
	return rows
}

// setupGateStage loads the standard gate-stage schema: state table t0
// with n rows and a 2x2 Hadamard-like gate table h.
func setupGateStage(t *testing.T, db *DB, n int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE t0 (s INTEGER, r REAL, i REAL)")
	mustExec(t, db, "CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)")
	mustExec(t, db, "INSERT INTO h VALUES (0,0,0.7071067811865476,0.1),(0,1,0.7071067811865476,0.0),(1,0,0.7071067811865476,-0.2),(1,1,-0.7071067811865476,0.0)")
	rows := kernelStateRows(n)
	for len(rows) > 0 {
		chunk := rows
		if len(chunk) > 512 {
			chunk = chunk[:512]
		}
		mustExec(t, db, "INSERT INTO t0 VALUES "+strings.Join(chunk, ","))
		rows = rows[len(chunk):]
	}
}

func gateStageQuery(having bool) string {
	q := `SELECT ((t0.s & ~1) | h.out_s) AS s,
       SUM((t0.r * h.r) - (t0.i * h.i)) AS r,
       SUM((t0.r * h.i) + (t0.i * h.r)) AS i
FROM t0 JOIN h ON h.in_s = (t0.s & 1)
GROUP BY ((t0.s & ~1) | h.out_s)`
	if having {
		q += "\nHAVING ((SUM((t0.r * h.r) - (t0.i * h.i)) * SUM((t0.r * h.r) - (t0.i * h.i))) + (SUM((t0.r * h.i) + (t0.i * h.r)) * SUM((t0.r * h.i) + (t0.i * h.r)))) > 0.0001"
	}
	return q
}

// rowsBits digests result rows down to their exact bit patterns, so
// two digests are equal iff the results are bitwise identical in the
// same order.
func rowsBits(rows []Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%d:%016x:%016x\n", r[0].I, math.Float64bits(r[1].F), math.Float64bits(r[2].F))
	}
	return b.String()
}

// TestKernelDifferentialMatrix is the bit-identity gate: kernel on vs
// off across storage layouts, worker counts, optimizer settings, both
// engine aggregation modes (serial under 8192 state rows, morsel
// parallel above), and HAVING pruning on/off. Every cell must agree
// with its kernels-off twin bit for bit, including row order.
func TestKernelDifferentialMatrix(t *testing.T) {
	for _, n := range []int{300, 20000} { // serial vs morsel-parallel agg
		for _, layout := range []string{"columnar", "row"} {
			for _, workers := range []int{1, 4} {
				for _, opt := range []string{"on", "off"} {
					for _, having := range []bool{false, true} {
						name := fmt.Sprintf("n=%d/%s/w=%d/opt=%s/having=%v", n, layout, workers, opt, having)
						t.Run(name, func(t *testing.T) {
							var digests [2]string
							for i, kernels := range []string{"off", "on"} {
								db := newOptDB(t, Config{
									Layout:      layout,
									Parallelism: workers,
									Optimizer:   opt,
									Kernels:     kernels,
								})
								setupGateStage(t, db, n)
								before := KernelCounters()["executions"]
								rows := queryAll(t, db, gateStageQuery(having))
								if want := 2 * ((n + 1) / 2); !having && len(rows) != want {
									t.Fatalf("got %d rows, want %d", len(rows), want)
								}
								ran := KernelCounters()["executions"] - before
								if kernels == "on" && layout == "columnar" && ran == 0 {
									t.Fatal("kernel did not execute on the columnar fast path")
								}
								if (kernels == "off" || layout == "row") && ran != 0 {
									t.Fatalf("kernel executed unexpectedly (kernels=%s layout=%s)", kernels, layout)
								}
								digests[i] = rowsBits(rows)
							}
							if digests[0] != digests[1] {
								t.Fatal("kernel output is not bit-identical to the interpreted engine")
							}
						})
					}
				}
			}
		}
	}
}

// TestKernelPreservesEmissionOrder runs without ORDER BY: the kernel
// must replay the interpreted engine's group emission order exactly,
// not just its values.
func TestKernelPreservesEmissionOrder(t *testing.T) {
	for _, n := range []int{1000, 20000} {
		var digests [2]string
		for i, kernels := range []string{"off", "on"} {
			db := newOptDB(t, Config{Parallelism: 4, Kernels: kernels})
			setupGateStage(t, db, n)
			digests[i] = rowsBits(queryAll(t, db, gateStageQuery(false)))
		}
		if digests[0] != digests[1] {
			t.Fatalf("n=%d: emission order differs between kernel and interpreted paths", n)
		}
	}
}

// TestKernelExplainAnnotation: a matching plan is annotated in EXPLAIN
// at both the header and the fused core node.
func TestKernelExplainAnnotation(t *testing.T) {
	db := newOptDB(t, Config{Parallelism: 1})
	setupGateStage(t, db, 64)
	plan, err := db.Explain(gateStageQuery(true))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "kernel: "+kernelAnnotation) {
		t.Fatalf("header missing kernel line:\n%s", plan)
	}
	if !strings.Contains(plan, "[kernel="+kernelAnnotation+"]") {
		t.Fatalf("core node missing kernel annotation:\n%s", plan)
	}
}

// TestKernelCacheReuse: repeating a structurally identical query must
// hit the kernel cache instead of re-lowering, including across
// engine instances sharing one KernelCache.
func TestKernelCacheReuse(t *testing.T) {
	shared := NewKernelCache(8)
	ResetKernelCounters()
	for run := 0; run < 2; run++ {
		db := newOptDB(t, Config{Parallelism: 1, KernelCache: shared})
		setupGateStage(t, db, 64)
		for i := 0; i < 3; i++ {
			queryAll(t, db, gateStageQuery(false))
		}
	}
	kc := KernelCounters()
	if kc["compiles"] != 1 {
		t.Fatalf("compiles = %d, want 1 (cache should absorb repeats)", kc["compiles"])
	}
	if kc["cache_hits"] != 5 {
		t.Fatalf("cache_hits = %d, want 5", kc["cache_hits"])
	}
	if shared.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", shared.Len())
	}
}

// explainKernelLine extracts the "kernel: ..." header line.
func explainKernelLine(t *testing.T, plan string) string {
	t.Helper()
	for _, ln := range strings.Split(plan, "\n") {
		if strings.HasPrefix(ln, "kernel: ") {
			return ln
		}
	}
	t.Fatalf("no kernel line in plan:\n%s", plan)
	return ""
}

// TestKernelFallbackReasons drives one query per matcher-decline
// reason and checks both the EXPLAIN header and that execution takes
// the interpreted path (producing correct results regardless).
func TestKernelFallbackReasons(t *testing.T) {
	sum := "SUM((t0.r * h.r) - (t0.i * h.i))"
	cases := []struct {
		name   string
		cfg    Config
		query  string
		reason string
	}{
		{
			name:   "disabled",
			cfg:    Config{Parallelism: 1, Kernels: "off"},
			query:  gateStageQuery(false),
			reason: "kernel: off",
		},
		{
			name:   "budget-limited",
			cfg:    Config{Parallelism: 1, MemoryBudget: 1 << 30},
			query:  gateStageQuery(false),
			reason: "kernel: fallback (" + kfBudgetLimited + ")",
		},
		{
			name:   "row-layout",
			cfg:    Config{Parallelism: 1, Layout: "row"},
			query:  gateStageQuery(false),
			reason: "kernel: fallback (" + kfRowLayout + ")",
		},
		{
			name:   "no-gate-stage",
			cfg:    Config{Parallelism: 1},
			query:  "SELECT s, r, i FROM t0",
			reason: "kernel: fallback (" + kfNoGateStage + ")",
		},
		{
			name: "project-shape",
			cfg:  Config{Parallelism: 1},
			query: `SELECT ((t0.s & ~1) | h.out_s) AS s, ` + sum + ` AS r
FROM t0 JOIN h ON h.in_s = (t0.s & 1) GROUP BY ((t0.s & ~1) | h.out_s)`,
			reason: "kernel: fallback (" + kfProjectShape + ")",
		},
		{
			name: "agg-shape",
			cfg:  Config{Parallelism: 1},
			query: `SELECT ((t0.s & ~1) | h.out_s) AS s, ` + sum + ` AS r, AVG(t0.i) AS i
FROM t0 JOIN h ON h.in_s = (t0.s & 1) GROUP BY ((t0.s & ~1) | h.out_s)`,
			reason: "kernel: fallback (" + kfAggShape + ")",
		},
		{
			name: "distinct-agg",
			cfg:  Config{Parallelism: 1},
			query: `SELECT ((t0.s & ~1) | h.out_s) AS s, ` + sum + ` AS r, SUM(DISTINCT t0.i) AS i
FROM t0 JOIN h ON h.in_s = (t0.s & 1) GROUP BY ((t0.s & ~1) | h.out_s)`,
			reason: "kernel: fallback (" + kfDistinctAgg + ")",
		},
		{
			name: "having-shape",
			cfg:  Config{Parallelism: 1},
			query: gateStageQuery(false) + `
HAVING ` + sum + ` > 0.5`,
			reason: "kernel: fallback (" + kfHavingShape + ")",
		},
		{
			name: "join-shape",
			cfg:  Config{Parallelism: 1},
			query: `SELECT ((t0.s & ~1) | h.out_s) AS s,
       SUM((t0.r * h.r) - (t0.i * h.i)) AS r,
       SUM((t0.r * h.i) + (t0.i * h.r)) AS i
FROM t0 JOIN h ON h.in_s < (t0.s & 1)
GROUP BY ((t0.s & ~1) | h.out_s)`,
			reason: "kernel: fallback (" + kfJoinShape + ")",
		},
		{
			name: "scan-shape",
			cfg:  Config{Parallelism: 1},
			query: `SELECT ((u.s & ~1) | h.out_s) AS s,
       SUM((u.r * h.r) - (u.i * h.i)) AS r,
       SUM((u.r * h.i) + (u.i * h.r)) AS i
FROM (SELECT s, r, i FROM t0 WHERE t0.r > 0.0) u JOIN h ON h.in_s = (u.s & 1)
GROUP BY ((u.s & ~1) | h.out_s)`,
			reason: "kernel: fallback (" + kfScanShape + ")",
		},
		{
			name: "unsupported-expr",
			cfg:  Config{Parallelism: 1},
			query: `SELECT ((t0.s & ~1) | h.out_s) AS s,
       SUM((t0.r * h.r) - (t0.i * h.i)) AS r,
       SUM((t0.r * h.i) + (t0.i * h.r)) AS i
FROM t0 JOIN h ON h.in_s = (t0.s % 0)
GROUP BY ((t0.s & ~1) | h.out_s)`,
			reason: "kernel: fallback (" + kfUnsupported + ")",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := newOptDB(t, tc.cfg)
			setupGateStage(t, db, 64)
			plan, err := db.Explain(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if got := explainKernelLine(t, plan); got != tc.reason {
				t.Fatalf("kernel line = %q, want %q\n%s", got, tc.reason, plan)
			}
			if strings.Contains(plan, "[kernel=") {
				t.Fatalf("declined plan still annotated:\n%s", plan)
			}
			// The query must still run correctly on the fallback path,
			// without a kernel execution.
			before := KernelCounters()["executions"]
			queryAll(t, db, tc.query)
			if ran := KernelCounters()["executions"] - before; ran != 0 {
				t.Fatalf("declined plan executed a kernel (%d)", ran)
			}
		})
	}
}

// TestKernelFallbackColumnTypes: a NULL amplitude defeats the typed
// vector bind — a runtime (not structural) decline, so EXPLAIN still
// advertises the kernel but execution falls back and stays correct.
func TestKernelFallbackColumnTypes(t *testing.T) {
	var digests [2]string
	for i, kernels := range []string{"off", "on"} {
		db := newOptDB(t, Config{Parallelism: 1, Kernels: kernels})
		setupGateStage(t, db, 64)
		mustExec(t, db, "INSERT INTO t0 VALUES (64, NULL, 0.5)")
		before := KernelCounters()["fallback_"+kfColumnTypes]
		rows := queryAll(t, db, gateStageQuery(false)+" ORDER BY s")
		if kernels == "on" {
			if got := KernelCounters()["fallback_"+kfColumnTypes] - before; got != 1 {
				t.Fatalf("column-types fallback counter = %d, want 1", got)
			}
		}
		digests[i] = rowsBits(rows)
	}
	if digests[0] != digests[1] {
		t.Fatal("fallback path output differs from interpreted engine")
	}
}

// TestKernelExplainAnalyze: EXPLAIN ANALYZE no longer declines the
// kernel — the matcher walks through the instrumentation wrappers, the
// fused loop runs, and the header reports the kernel's own stats
// (rows in/out, morsels, wall time) instead of silently falling back.
func TestKernelExplainAnalyze(t *testing.T) {
	db := newOptDB(t, Config{Parallelism: 1})
	setupGateStage(t, db, 64)
	before := KernelCounters()["executions"]
	plan, err := db.ExplainAnalyze(context.Background(), gateStageQuery(false))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := explainKernelLine(t, plan), "kernel: gate-stage (analyzed)"; got != want {
		t.Fatalf("kernel line = %q, want %q\n%s", got, want, plan)
	}
	if ran := KernelCounters()["executions"] - before; ran != 1 {
		t.Fatalf("EXPLAIN ANALYZE ran %d kernel executions, want 1", ran)
	}
	if !strings.Contains(plan, "kernel actual: rows_in=64 ") {
		t.Fatalf("missing kernel actual stats line:\n%s", plan)
	}
	if !strings.Contains(plan, "[kernel output: "+kernelAnnotation+"]") {
		t.Fatalf("kernel output scan not marked in plan:\n%s", plan)
	}
}

// TestKernelCTASCollectsStats: the kernel's output store feeds the
// same statistics collector as the interpreted path, so CTAS over a
// gate stage yields fresh stats without ANALYZE.
func TestKernelCTASCollectsStats(t *testing.T) {
	db := newOptDB(t, Config{Parallelism: 1})
	setupGateStage(t, db, 64)
	before := KernelCounters()["executions"]
	mustExec(t, db, "CREATE TABLE t1 AS "+gateStageQuery(false))
	if ran := KernelCounters()["executions"] - before; ran != 1 {
		t.Fatalf("CTAS did not run the kernel (%d executions)", ran)
	}
	ts := storeStats(db.lookupTable("t1").store)
	if ts == nil || ts.rows != 64 {
		t.Fatalf("stats after kernel CTAS: %+v", ts)
	}
	if c := ts.col(0); !c.intSeen || c.intMin != 0 || c.intMax != 63 {
		t.Fatalf("kernel CTAS stats min/max = [%d, %d]", c.intMin, c.intMax)
	}
}
