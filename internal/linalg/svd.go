package linalg

import (
	"math"
	"math/cmplx"
	"sort"
)

// SVD holds a (thin) singular value decomposition A = U · diag(S) · V†,
// with U of shape m×k, S of length k, and V of shape n×k, where
// k = min(m, n). Singular values are sorted in descending order.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// maxJacobiSweeps bounds the one-sided Jacobi iteration. Convergence for
// the small (≤ few hundred columns) matrices the MPS simulator produces is
// typically under 15 sweeps.
const maxJacobiSweeps = 64

// ComputeSVD returns the thin SVD of a using one-sided Jacobi
// orthogonalization, which is simple, numerically robust, and accurate for
// the small complex matrices arising in tensor-network simulation.
func ComputeSVD(a *Matrix) SVD {
	if a.Rows < a.Cols {
		// Work on the adjoint and swap the factors:
		// A† = U'SV'† ⇒ A = V'SU'†.
		s := ComputeSVD(a.ConjTranspose())
		return SVD{U: s.V, S: s.S, V: s.U}
	}
	m, n := a.Rows, a.Cols
	g := a.Clone() // columns converge to U_j * σ_j
	v := Identity(n)

	const eps = 1e-13
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta float64
				var gamma complex128
				for r := 0; r < m; r++ {
					gp := g.Data[r*n+p]
					gq := g.Data[r*n+q]
					alpha += real(gp)*real(gp) + imag(gp)*imag(gp)
					beta += real(gq)*real(gq) + imag(gq)*imag(gq)
					gamma += cmplx.Conj(gp) * gq
				}
				ag := cmplx.Abs(gamma)
				if ag <= eps*math.Sqrt(alpha*beta) || alpha == 0 || beta == 0 {
					continue
				}
				converged = false
				// Phase that makes the inner product real-positive.
				phase := gamma / complex(ag, 0)
				zeta := (beta - alpha) / (2 * ag)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				cs := complex(c, 0)
				sPhaseConj := complex(s, 0) * cmplx.Conj(phase) // s·e^{-iφ}
				sPhase := complex(s, 0) * phase                 // s·e^{+iφ}
				rotateColumns(g, p, q, cs, sPhaseConj, sPhase)
				rotateColumns(v, p, q, cs, sPhaseConj, sPhase)
			}
		}
		if converged {
			break
		}
	}

	// Extract singular values and normalize U columns.
	sv := make([]float64, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for r := 0; r < m; r++ {
			x := g.Data[r*n+j]
			norm += real(x)*real(x) + imag(x)*imag(x)
		}
		norm = math.Sqrt(norm)
		sv[j] = norm
		if norm > 0 {
			inv := complex(1/norm, 0)
			for r := 0; r < m; r++ {
				u.Data[r*n+j] = g.Data[r*n+j] * inv
			}
		}
	}

	// Sort descending by singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return sv[idx[i]] > sv[idx[j]] })
	us := NewMatrix(m, n)
	vs := NewMatrix(n, n)
	ss := make([]float64, n)
	for newJ, oldJ := range idx {
		ss[newJ] = sv[oldJ]
		for r := 0; r < m; r++ {
			us.Data[r*n+newJ] = u.Data[r*n+oldJ]
		}
		for r := 0; r < n; r++ {
			vs.Data[r*n+newJ] = v.Data[r*n+oldJ]
		}
	}
	return SVD{U: us, S: ss, V: vs}
}

// rotateColumns applies the 2-column unitary update
//
//	col_p ← c·col_p − s·e^{-iφ}·col_q
//	col_q ← s·e^{+iφ}·col_p + c·col_q
//
// in place, where cs=c, spc=s·e^{-iφ}, sp=s·e^{+iφ}.
func rotateColumns(m *Matrix, p, q int, cs, spc, sp complex128) {
	n := m.Cols
	for r := 0; r < m.Rows; r++ {
		gp := m.Data[r*n+p]
		gq := m.Data[r*n+q]
		m.Data[r*n+p] = cs*gp - spc*gq
		m.Data[r*n+q] = sp*gp + cs*gq
	}
}

// Truncate reduces the decomposition to at most maxRank singular values and
// drops values below absTol. It returns the retained rank and the truncated
// factors (copies). The discarded weight (sum of squared dropped singular
// values) is returned so callers can track truncation error.
func (d SVD) Truncate(maxRank int, absTol float64) (SVD, float64) {
	k := len(d.S)
	rank := 0
	for rank < k && d.S[rank] > absTol {
		rank++
	}
	if maxRank > 0 && rank > maxRank {
		rank = maxRank
	}
	if rank == 0 {
		rank = 1 // always keep at least one component to preserve shape
	}
	var discarded float64
	for j := rank; j < k; j++ {
		discarded += d.S[j] * d.S[j]
	}
	u := NewMatrix(d.U.Rows, rank)
	v := NewMatrix(d.V.Rows, rank)
	for r := 0; r < d.U.Rows; r++ {
		copy(u.Data[r*rank:(r+1)*rank], d.U.Data[r*d.U.Cols:r*d.U.Cols+rank])
	}
	for r := 0; r < d.V.Rows; r++ {
		copy(v.Data[r*rank:(r+1)*rank], d.V.Data[r*d.V.Cols:r*d.V.Cols+rank])
	}
	s := make([]float64, rank)
	copy(s, d.S[:rank])
	return SVD{U: u, S: s, V: v}, discarded
}

// Reconstruct returns U · diag(S) · V†, useful for testing.
func (d SVD) Reconstruct() *Matrix {
	k := len(d.S)
	us := NewMatrix(d.U.Rows, k)
	for r := 0; r < d.U.Rows; r++ {
		for j := 0; j < k; j++ {
			us.Data[r*k+j] = d.U.Data[r*d.U.Cols+j] * complex(d.S[j], 0)
		}
	}
	return us.Mul(d.V.ConjTranspose())
}
