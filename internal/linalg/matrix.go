// Package linalg provides dense complex linear algebra used by the
// quantum gate library, the gate-fusion query optimizer, and the matrix
// product state (MPS) simulator. It implements only what the simulators
// need — small dense matrices, Kronecker products, and a complex SVD —
// with no external dependencies.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: want %d elems, got %d", r, m.Cols, len(row)))
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Mul returns m · other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			rowOut := out.Data[r*out.Cols : (r+1)*out.Cols]
			rowB := other.Data[k*other.Cols : (k+1)*other.Cols]
			for c := range rowB {
				rowOut[c] += a * rowB[c]
			}
		}
	}
	return out
}

// MulVec returns m · v for a column vector v (len == Cols).
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: mulvec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]complex128, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var sum complex128
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, x := range v {
			sum += row[c] * x
		}
		out[r] = sum
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: add shape mismatch")
	}
	out := m.Clone()
	for i, v := range other.Data {
		out.Data[i] += v
	}
	return out
}

// ConjTranspose returns the Hermitian adjoint m†.
func (m *Matrix) ConjTranspose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*out.Cols+r] = cmplx.Conj(m.Data[r*m.Cols+c])
		}
	}
	return out
}

// Kron returns the Kronecker product m ⊗ other.
func (m *Matrix) Kron(other *Matrix) *Matrix {
	out := NewMatrix(m.Rows*other.Rows, m.Cols*other.Cols)
	for r1 := 0; r1 < m.Rows; r1++ {
		for c1 := 0; c1 < m.Cols; c1++ {
			a := m.Data[r1*m.Cols+c1]
			if a == 0 {
				continue
			}
			for r2 := 0; r2 < other.Rows; r2++ {
				dst := ((r1*other.Rows + r2) * out.Cols) + c1*other.Cols
				src := r2 * other.Cols
				for c2 := 0; c2 < other.Cols; c2++ {
					out.Data[dst+c2] = a * other.Data[src+c2]
				}
			}
		}
	}
	return out
}

// IsUnitary reports whether m†m ≈ I within tol (max-abs elementwise).
func (m *Matrix) IsUnitary(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	p := m.ConjTranspose().Mul(m)
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			want := complex(0, 0)
			if r == c {
				want = 1
			}
			if cmplx.Abs(p.At(r, c)-want) > tol {
				return false
			}
		}
	}
	return true
}

// EqualApprox reports elementwise equality within tol.
func (m *Matrix) EqualApprox(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns sqrt(sum |a_ij|^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		b.WriteString("[")
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				b.WriteString(", ")
			}
			v := m.At(r, c)
			fmt.Fprintf(&b, "%.4g%+.4gi", real(v), imag(v))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// VecNorm returns the Euclidean norm of a complex vector.
func VecNorm(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// VecDot returns the Hermitian inner product ⟨a|b⟩ = Σ conj(a_i)·b_i.
func VecDot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}
