package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]complex128{
		{1, 2i},
		{3 - 1i, 4},
	})
	if got := Identity(2).Mul(a); !got.EqualApprox(a, 1e-12) {
		t.Fatalf("I·A != A:\n%v", got)
	}
	if got := a.Mul(Identity(2)); !got.EqualApprox(a, 1e-12) {
		t.Fatalf("A·I != A:\n%v", got)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.EqualApprox(want, 1e-12) {
		t.Fatalf("got\n%v want\n%v", got, want)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{0, 1}, {1, 0}}) // X gate
	v := []complex128{1, 0}
	got := a.MulVec(v)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("X|0> = %v, want |1>", got)
	}
}

func TestConjTranspose(t *testing.T) {
	a := FromRows([][]complex128{{1 + 2i, 3}, {4i, 5 - 1i}})
	at := a.ConjTranspose()
	if at.At(0, 0) != 1-2i || at.At(0, 1) != -4i || at.At(1, 0) != 3 || at.At(1, 1) != 5+1i {
		t.Fatalf("adjoint wrong:\n%v", at)
	}
}

func TestKronShapeAndValues(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}})   // 1x2
	b := FromRows([][]complex128{{3}, {4}}) // 2x1
	k := a.Kron(b)                          // 2x2
	want := FromRows([][]complex128{{3, 6}, {4, 8}})
	if !k.EqualApprox(want, 1e-12) {
		t.Fatalf("kron wrong:\n%v", k)
	}
}

func TestKronIdentityIsBlockDiag(t *testing.T) {
	h := FromRows([][]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	})
	k := Identity(2).Kron(h)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("shape %dx%d", k.Rows, k.Cols)
	}
	if !k.IsUnitary(1e-12) {
		t.Fatal("I⊗H should be unitary")
	}
}

func TestIsUnitary(t *testing.T) {
	h := FromRows([][]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	})
	if !h.IsUnitary(1e-12) {
		t.Fatal("H must be unitary")
	}
	notU := FromRows([][]complex128{{1, 1}, {0, 1}})
	if notU.IsUnitary(1e-12) {
		t.Fatal("shear matrix is not unitary")
	}
}

func TestVecDotNorm(t *testing.T) {
	v := []complex128{3, 4i}
	if n := VecNorm(v); math.Abs(n-5) > 1e-12 {
		t.Fatalf("norm = %v, want 5", n)
	}
	d := VecDot([]complex128{1i, 0}, []complex128{1i, 0})
	if cmplx.Abs(d-1) > 1e-12 {
		t.Fatalf("<v|v> = %v, want 1", d)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func TestSVDReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{4, 4}, {6, 3}, {3, 6}, {8, 5}, {1, 4}, {5, 1}} {
		a := randomMatrix(rng, shape[0], shape[1])
		d := ComputeSVD(a)
		rec := d.Reconstruct()
		if !rec.EqualApprox(a, 1e-9) {
			t.Fatalf("shape %v: reconstruction error %g", shape, rec.Add(a.Scale(-1)).FrobeniusNorm())
		}
		for j := 1; j < len(d.S); j++ {
			if d.S[j] > d.S[j-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", d.S)
			}
		}
		for _, s := range d.S {
			if s < 0 {
				t.Fatalf("negative singular value %v", s)
			}
		}
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 6, 4)
	d := ComputeSVD(a)
	utu := d.U.ConjTranspose().Mul(d.U)
	if !utu.EqualApprox(Identity(4), 1e-9) {
		t.Fatalf("U†U != I:\n%v", utu)
	}
	vtv := d.V.ConjTranspose().Mul(d.V)
	if !vtv.EqualApprox(Identity(4), 1e-9) {
		t.Fatalf("V†V != I:\n%v", vtv)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := FromRows([][]complex128{{1, 2, 3}, {2, 4, 6}, {-1i, -2i, -3i}})
	d := ComputeSVD(a)
	if !d.Reconstruct().EqualApprox(a, 1e-9) {
		t.Fatal("rank-1 reconstruction failed")
	}
	nonzero := 0
	for _, s := range d.S {
		if s > 1e-9 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("expected rank 1, got %d nonzero singular values %v", nonzero, d.S)
	}
}

func TestSVDTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 6, 6)
	d := ComputeSVD(a)
	tr, discarded := d.Truncate(3, 0)
	if len(tr.S) != 3 {
		t.Fatalf("rank after truncation = %d", len(tr.S))
	}
	var want float64
	for _, s := range d.S[3:] {
		want += s * s
	}
	if math.Abs(discarded-want) > 1e-9 {
		t.Fatalf("discarded weight %v, want %v", discarded, want)
	}
	// Eckart–Young: truncated reconstruction error equals sqrt(discarded).
	err := tr.Reconstruct().Add(a.Scale(-1)).FrobeniusNorm()
	if math.Abs(err-math.Sqrt(want)) > 1e-8 {
		t.Fatalf("reconstruction error %v, want %v", err, math.Sqrt(want))
	}
}

func TestSVDSingularValuesInvariantProperty(t *testing.T) {
	// Property: Frobenius norm equals sqrt(sum of squared singular values).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(5)
		cols := 2 + rng.Intn(5)
		a := randomMatrix(rng, rows, cols)
		d := ComputeSVD(a)
		var ss float64
		for _, s := range d.S {
			ss += s * s
		}
		return math.Abs(math.Sqrt(ss)-a.FrobeniusNorm()) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDUnitaryHasUnitSingularValues(t *testing.T) {
	h := FromRows([][]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	})
	d := ComputeSVD(h)
	for _, s := range d.S {
		if math.Abs(s-1) > 1e-10 {
			t.Fatalf("unitary matrix should have all σ=1, got %v", d.S)
		}
	}
}
