package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
)

// Per-backend micro-benchmarks over the two canonical workload shapes.

func benchRun(b *testing.B, backend Backend, c *quantum.Circuit) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackendsSparseGHZ16(b *testing.B) {
	c := circuits.GHZ(16)
	b.Run("statevector", func(b *testing.B) { benchRun(b, &StateVector{}, c) })
	b.Run("sparse", func(b *testing.B) { benchRun(b, &Sparse{}, c) })
	b.Run("sql", func(b *testing.B) { benchRun(b, &SQL{}, c) })
	b.Run("dd", func(b *testing.B) { benchRun(b, &DD{}, c) })
	b.Run("mps", func(b *testing.B) { benchRun(b, &MPS{}, c) })
}

func BenchmarkBackendsDenseQFT8(b *testing.B) {
	c := circuits.QFT(8)
	b.Run("statevector", func(b *testing.B) { benchRun(b, &StateVector{}, c) })
	b.Run("sparse", func(b *testing.B) { benchRun(b, &Sparse{}, c) })
	b.Run("sql", func(b *testing.B) { benchRun(b, &SQL{}, c) })
	b.Run("dd", func(b *testing.B) { benchRun(b, &DD{}, c) })
	b.Run("mps", func(b *testing.B) { benchRun(b, &MPS{}, c) })
}

func BenchmarkStateVectorGateKernels(b *testing.B) {
	// Isolated dense gate-application cost at n=16.
	n := 16
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	h := quantum.Gate{Name: "H", Qubits: []int{7}}.MustMatrix()
	cx := quantum.Gate{Name: "CX", Qubits: []int{3, 11}}.MustMatrix()
	b.Run("H", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			applyDense(amp, n, []int{7}, h.Data)
		}
	})
	b.Run("CX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			applyDense(amp, n, []int{3, 11}, cx.Data)
		}
	})
}

func BenchmarkDDGateApplication(b *testing.B) {
	// DD cost on a structured 20-qubit state.
	c := circuits.GHZ(20)
	benchRun(b, &DD{}, c)
}

func BenchmarkMPSSVDSplit(b *testing.B) {
	// Entangling circuit stressing the SVD path.
	c := circuits.RandomDense(10, 3, 5)
	benchRun(b, &MPS{}, c)
}
