package sim

import (
	"math"
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
)

// TestDifferentialRandomCircuits is the heavyweight correctness net: 20
// random circuits drawn from the full gate registry, each executed on
// the SQL backend (all fusion levels and both encodings), the sparse
// simulator, and the decision-diagram simulator, demanding fidelity 1
// against the dense reference.
func TestDifferentialRandomCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite skipped in -short mode")
	}
	for seed := int64(0); seed < 20; seed++ {
		c := circuits.RandomAnyGate(5, 12, seed)
		ref, err := (&StateVector{}).Run(c)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		backends := []Backend{
			&Sparse{},
			&DD{},
			&SQL{},
			&SQL{Fusion: core.FusionSameQubits},
			&SQL{Fusion: core.FusionSubset},
			&SQL{Encoding: core.EncodingArithmetic},
			&SQL{Mode: core.MaterializedChain, Fusion: core.FusionSubset},
		}
		for _, b := range backends {
			res, err := b.Run(c)
			if err != nil {
				t.Fatalf("seed %d on %s: %v\ncircuit:\n%s", seed, b.Name(), err, c.String())
			}
			if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-8 {
				t.Fatalf("seed %d on %s: fidelity %v\ncircuit:\n%s", seed, b.Name(), f, c.String())
			}
		}
	}
}

// TestDifferentialMPSTwoQubit does the same for the MPS backend using
// only its supported (≤2-qubit) gate set via dense random circuits.
func TestDifferentialMPSTwoQubit(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite skipped in -short mode")
	}
	for seed := int64(0); seed < 10; seed++ {
		c := circuits.RandomDense(6, 4, seed)
		ref, err := (&StateVector{}).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&MPS{}).Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-8 {
			t.Fatalf("seed %d: fidelity %v", seed, f)
		}
	}
}

// TestDifferentialNonZeroInitialState checks every backend that accepts
// an arbitrary initial state agrees when starting from a superposition.
func TestDifferentialNonZeroInitialState(t *testing.T) {
	c := circuits.RandomDense(4, 2, 99)
	init := quantumSuperposition(4)
	ref, err := (&StateVector{Initial: init}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{
		&Sparse{Initial: init},
		&SQL{Initial: init},
		&DD{Initial: init},
	} {
		res, err := b.Run(c)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-8 {
			t.Fatalf("%s: fidelity %v", b.Name(), f)
		}
	}
}

// quantumSuperposition builds a fixed non-trivial 3-term initial state.
func quantumSuperposition(n int) *quantum.State {
	s := quantum.NewState(n)
	s.Set(0, complex(0.6, 0))
	s.Set(3, complex(0, 0.48))
	s.Set(5, complex(0.64, 0))
	return s
}
