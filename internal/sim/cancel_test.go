package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/sqlengine"
)

// TestSQLBackendCancelReleasesEverything is the service tier's core
// safety property: cancelling an in-flight SQL-backend simulation stops
// it within one batch/morsel boundary of engine work and leaks neither
// goroutines nor memBudget reservations — at one worker and at four.
func TestSQLBackendCancelReleasesEverything(t *testing.T) {
	// 2^16 nonzero amplitudes: each gate stage spans many batches and
	// multiple morsels, so cancellation lands mid-query.
	circuit := circuits.ParitySuperposition(16)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			budget := sqlengine.NewMemBudget(0)
			b := &SQL{Parallelism: workers, Budget: budget}

			// Uncancelled baseline so the cancelled attempt provably
			// stops early.
			begin := time.Now()
			if _, err := b.Run(circuit); err != nil {
				t.Fatal(err)
			}
			full := time.Since(begin)
			if used := budget.Used(); used != 0 {
				t.Fatalf("baseline run leaked %d budget bytes", used)
			}

			goroutines := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := b.RunContext(ctx, circuit)
				done <- err
			}()
			time.Sleep(full / 8)
			cancel()
			var err error
			select {
			case err = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("cancelled simulation did not return")
			}
			if err == nil {
				t.Skip("simulation finished before cancellation landed")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if used := budget.Used(); used != 0 {
				t.Fatalf("cancelled run leaked %d budget bytes", used)
			}
			waitForGoroutineBaseline(t, goroutines)
		})
	}
}

// TestAllBackendsHonourCancellation runs every backend with an
// already-cancelled context: each must fail fast with ctx.Err().
func TestAllBackendsHonourCancellation(t *testing.T) {
	c := circuits.QFT(6)
	backends := []Backend{
		&SQL{}, &StateVector{}, &Sparse{}, &MPS{}, &DD{},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, b := range backends {
		if _, err := b.RunContext(ctx, c); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", b.Name(), err)
		}
	}
}

// waitForGoroutineBaseline retries until the goroutine count returns to
// the baseline (goleak-style: cancellation unwinds workers
// asynchronously, so poll with a deadline).
func waitForGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancel: %d now vs %d before\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
