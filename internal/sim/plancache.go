package sim

import (
	"container/list"
	"errors"
	"sync"

	"qymera/internal/core"
	"qymera/internal/quantum"
	"qymera/internal/sqlengine"
)

// PlanCache is an LRU cache of circuit→SQL translations, shared across
// SQL-backend runs (and, in the simulation service, across concurrent
// requests). It has two hit tiers:
//
//   - exact: the same circuit (same gates, parameters, initial state,
//     options) was translated before — the cached *Translation is
//     returned as-is, skipping translation entirely. The exact index
//     is keyed by the full canonical input encoding
//     (core.ExactFingerprint), not a hash, so a hit can never alias
//     two different circuits;
//   - structural: a circuit with the same SQL text shape but different
//     parameter values (a parameter sweep) was translated before — the
//     cached SQL is reused and only the numeric gate/initial-state rows
//     are recomputed (core.Rebind, which verifies the structure, so the
//     hash-keyed structural index degrades to a miss on collision).
//
// The cache is sharded planCacheShards ways by the low bits of the
// structural key: a storm of concurrent requests (the service's
// many-tenant case) contends on per-shard locks instead of one global
// mutex. Each shard runs its own LRU over its slice of the capacity;
// both indexes of an entry live in its shard (an exact key always
// carries the entry's structural key, which routes to the same shard).
//
// Cached translations are shared read-only; callers must not mutate
// them. All methods are safe for concurrent use.
type PlanCache struct {
	shards [planCacheShards]planShard

	kmu sync.Mutex
	// kernels caches compiled gate-stage kernel programs (the engine
	// tier below the SQL text) so sweeps that rebind gate data reuse
	// the lowered loop too. Lazily created, shared across the backends
	// that share this PlanCache.
	kernels *sqlengine.KernelCache
}

// planCacheShards is the lock-sharding fanout. Power of two so the
// shard index is a mask of the structural key's mixed low bits.
const planCacheShards = 8

// planShard is one independently locked slice of the cache.
type planShard struct {
	mu         sync.Mutex
	capacity   int
	lru        *list.List // of *planEntry, front = most recent
	exact      map[string]*list.Element
	structural map[uint64]*list.Element

	hits           uint64 // exact-tier hits
	structuralHits uint64
	misses         uint64
}

type planEntry struct {
	exactKey  string
	structKey uint64
	tr        *core.Translation
}

// DefaultPlanCacheSize is the entry capacity used when NewPlanCache is
// called with a non-positive size.
const DefaultPlanCacheSize = 128

// NewPlanCache returns a cache holding at most about capacity
// translations (<= 0 uses DefaultPlanCacheSize). Capacity is split
// evenly across the shards, rounded up to at least one entry per
// shard, so the effective bound is capacity rounded up to a multiple
// of planCacheShards.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	per := (capacity + planCacheShards - 1) / planCacheShards
	if per < 1 {
		per = 1
	}
	pc := &PlanCache{}
	for i := range pc.shards {
		pc.shards[i] = planShard{
			capacity:   per,
			lru:        list.New(),
			exact:      map[string]*list.Element{},
			structural: map[uint64]*list.Element{},
		}
	}
	return pc
}

// shardFor routes a structural key to its shard.
func (pc *PlanCache) shardFor(structKey uint64) *planShard {
	return &pc.shards[structKey%planCacheShards]
}

// PlanCacheStats is a snapshot of cache counters.
type PlanCacheStats struct {
	Hits           uint64 `json:"hits"`            // exact-tier hits
	StructuralHits uint64 `json:"structural_hits"` // rebind-tier hits
	Misses         uint64 `json:"misses"`
	Entries        int    `json:"entries"`
}

// Kernels returns the cache of compiled gate-stage kernel programs
// that rides along with the plan cache, creating it on first use.
func (pc *PlanCache) Kernels() *sqlengine.KernelCache {
	pc.kmu.Lock()
	defer pc.kmu.Unlock()
	if pc.kernels == nil {
		pc.kernels = sqlengine.NewKernelCache(0)
	}
	return pc.kernels
}

// Stats returns the counters aggregated across every shard.
func (pc *PlanCache) Stats() PlanCacheStats {
	var out PlanCacheStats
	for i := range pc.shards {
		s := pc.shards[i].stats()
		out.Hits += s.Hits
		out.StructuralHits += s.StructuralHits
		out.Misses += s.Misses
		out.Entries += s.Entries
	}
	return out
}

// ShardStats returns each shard's own counters, in shard order — the
// per-shard hit/miss visibility behind the service's /metrics.
func (pc *PlanCache) ShardStats() []PlanCacheStats {
	out := make([]PlanCacheStats, planCacheShards)
	for i := range pc.shards {
		out[i] = pc.shards[i].stats()
	}
	return out
}

func (s *planShard) stats() PlanCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PlanCacheStats{
		Hits:           s.hits,
		StructuralHits: s.structuralHits,
		Misses:         s.misses,
		Entries:        s.lru.Len(),
	}
}

// Plan-cache outcome tiers reported by TranslationTier (and recorded
// on job translate spans).
const (
	PlanTierExactHit         = "exact_hit"
	PlanTierStructuralRebind = "structural_rebind"
	PlanTierMiss             = "miss"
)

// Translation returns the SQL program for the circuit, from cache when
// possible. Misses (and structural hits, whose rebound plan is a new
// exact entry) populate the cache.
func (pc *PlanCache) Translation(c *quantum.Circuit, initial *quantum.State, opts core.Options) (*core.Translation, error) {
	tr, _, err := pc.TranslationTier(c, initial, opts)
	return tr, err
}

// TranslationTier is Translation plus which cache tier served the
// request (PlanTierExactHit, PlanTierStructuralRebind, PlanTierMiss) —
// per-request attribution that a Stats() delta cannot give under
// concurrency.
func (pc *PlanCache) TranslationTier(c *quantum.Circuit, initial *quantum.State, opts core.Options) (*core.Translation, string, error) {
	exactKey := core.ExactFingerprint(c, initial, opts)
	structKey := core.StructuralKey(c, opts)
	sh := pc.shardFor(structKey)

	sh.mu.Lock()
	if el, ok := sh.exact[exactKey]; ok {
		sh.hits++
		sh.lru.MoveToFront(el)
		tr := el.Value.(*planEntry).tr
		sh.mu.Unlock()
		return tr, PlanTierExactHit, nil
	}
	var structural *core.Translation
	if el, ok := sh.structural[structKey]; ok {
		structural = el.Value.(*planEntry).tr
	}
	sh.mu.Unlock()

	// Translation work happens outside the lock: concurrent misses may
	// duplicate work but never block each other on the CPU-heavy part.
	if structural != nil {
		tr, err := structural.Rebind(c, initial, opts)
		if err == nil {
			sh.record(&sh.structuralHits, exactKey, structKey, tr)
			return tr, PlanTierStructuralRebind, nil
		}
		if !errors.Is(err, core.ErrPlanStructureMismatch) {
			return nil, "", err
		}
		// A false structural match (hash collision): fall through.
	}
	tr, err := core.Translate(c, initial, opts)
	if err != nil {
		return nil, "", err
	}
	sh.record(&sh.misses, exactKey, structKey, tr)
	return tr, PlanTierMiss, nil
}

// record files a freshly produced translation under both keys, bumping
// the given counter and evicting the shard's least-recently-used entry
// beyond its capacity.
func (s *planShard) record(counter *uint64, exactKey string, structKey uint64, tr *core.Translation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	*counter++
	if el, ok := s.exact[exactKey]; ok {
		// Raced with another miss for the same circuit; keep the
		// incumbent.
		s.lru.MoveToFront(el)
		return
	}
	entry := &planEntry{exactKey: exactKey, structKey: structKey, tr: tr}
	el := s.lru.PushFront(entry)
	s.exact[exactKey] = el
	// The structural index keeps the most recent representative of the
	// family; older ones stay reachable via their exact keys.
	s.structural[structKey] = el
	for s.lru.Len() > s.capacity {
		old := s.lru.Back()
		s.lru.Remove(old)
		oe := old.Value.(*planEntry)
		delete(s.exact, oe.exactKey)
		if cur, ok := s.structural[oe.structKey]; ok && cur == old {
			delete(s.structural, oe.structKey)
		}
	}
}
