package sim

import (
	"container/list"
	"errors"
	"sync"

	"qymera/internal/core"
	"qymera/internal/quantum"
	"qymera/internal/sqlengine"
)

// PlanCache is an LRU cache of circuit→SQL translations, shared across
// SQL-backend runs (and, in the simulation service, across concurrent
// requests). It has two hit tiers:
//
//   - exact: the same circuit (same gates, parameters, initial state,
//     options) was translated before — the cached *Translation is
//     returned as-is, skipping translation entirely. The exact index
//     is keyed by the full canonical input encoding
//     (core.ExactFingerprint), not a hash, so a hit can never alias
//     two different circuits;
//   - structural: a circuit with the same SQL text shape but different
//     parameter values (a parameter sweep) was translated before — the
//     cached SQL is reused and only the numeric gate/initial-state rows
//     are recomputed (core.Rebind, which verifies the structure, so the
//     hash-keyed structural index degrades to a miss on collision).
//
// Cached translations are shared read-only; callers must not mutate
// them. All methods are safe for concurrent use.
type PlanCache struct {
	mu         sync.Mutex
	capacity   int
	lru        *list.List // of *planEntry, front = most recent
	exact      map[string]*list.Element
	structural map[uint64]*list.Element

	hits           uint64 // exact-tier hits
	structuralHits uint64
	misses         uint64

	// kernels caches compiled gate-stage kernel programs (the engine
	// tier below the SQL text) so sweeps that rebind gate data reuse
	// the lowered loop too. Lazily created, shared across the backends
	// that share this PlanCache.
	kernels *sqlengine.KernelCache
}

type planEntry struct {
	exactKey  string
	structKey uint64
	tr        *core.Translation
}

// DefaultPlanCacheSize is the entry capacity used when NewPlanCache is
// called with a non-positive size.
const DefaultPlanCacheSize = 128

// NewPlanCache returns a cache holding at most capacity translations
// (<= 0 uses DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		capacity:   capacity,
		lru:        list.New(),
		exact:      map[string]*list.Element{},
		structural: map[uint64]*list.Element{},
	}
}

// PlanCacheStats is a snapshot of cache counters.
type PlanCacheStats struct {
	Hits           uint64 `json:"hits"`            // exact-tier hits
	StructuralHits uint64 `json:"structural_hits"` // rebind-tier hits
	Misses         uint64 `json:"misses"`
	Entries        int    `json:"entries"`
}

// Kernels returns the cache of compiled gate-stage kernel programs
// that rides along with the plan cache, creating it on first use.
func (pc *PlanCache) Kernels() *sqlengine.KernelCache {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.kernels == nil {
		pc.kernels = sqlengine.NewKernelCache(0)
	}
	return pc.kernels
}

// Stats returns the current counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:           pc.hits,
		StructuralHits: pc.structuralHits,
		Misses:         pc.misses,
		Entries:        pc.lru.Len(),
	}
}

// Plan-cache outcome tiers reported by TranslationTier (and recorded
// on job translate spans).
const (
	PlanTierExactHit         = "exact_hit"
	PlanTierStructuralRebind = "structural_rebind"
	PlanTierMiss             = "miss"
)

// Translation returns the SQL program for the circuit, from cache when
// possible. Misses (and structural hits, whose rebound plan is a new
// exact entry) populate the cache.
func (pc *PlanCache) Translation(c *quantum.Circuit, initial *quantum.State, opts core.Options) (*core.Translation, error) {
	tr, _, err := pc.TranslationTier(c, initial, opts)
	return tr, err
}

// TranslationTier is Translation plus which cache tier served the
// request (PlanTierExactHit, PlanTierStructuralRebind, PlanTierMiss) —
// per-request attribution that a Stats() delta cannot give under
// concurrency.
func (pc *PlanCache) TranslationTier(c *quantum.Circuit, initial *quantum.State, opts core.Options) (*core.Translation, string, error) {
	exactKey := core.ExactFingerprint(c, initial, opts)
	structKey := core.StructuralKey(c, opts)

	pc.mu.Lock()
	if el, ok := pc.exact[exactKey]; ok {
		pc.hits++
		pc.lru.MoveToFront(el)
		tr := el.Value.(*planEntry).tr
		pc.mu.Unlock()
		return tr, PlanTierExactHit, nil
	}
	var structural *core.Translation
	if el, ok := pc.structural[structKey]; ok {
		structural = el.Value.(*planEntry).tr
	}
	pc.mu.Unlock()

	// Translation work happens outside the lock: concurrent misses may
	// duplicate work but never block each other on the CPU-heavy part.
	if structural != nil {
		tr, err := structural.Rebind(c, initial, opts)
		if err == nil {
			pc.record(&pc.structuralHits, exactKey, structKey, tr)
			return tr, PlanTierStructuralRebind, nil
		}
		if !errors.Is(err, core.ErrPlanStructureMismatch) {
			return nil, "", err
		}
		// A false structural match (hash collision): fall through.
	}
	tr, err := core.Translate(c, initial, opts)
	if err != nil {
		return nil, "", err
	}
	pc.record(&pc.misses, exactKey, structKey, tr)
	return tr, PlanTierMiss, nil
}

// record files a freshly produced translation under both keys, bumping
// the given counter and evicting the least-recently-used entry beyond
// capacity.
func (pc *PlanCache) record(counter *uint64, exactKey string, structKey uint64, tr *core.Translation) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	*counter++
	if el, ok := pc.exact[exactKey]; ok {
		// Raced with another miss for the same circuit; keep the
		// incumbent.
		pc.lru.MoveToFront(el)
		return
	}
	entry := &planEntry{exactKey: exactKey, structKey: structKey, tr: tr}
	el := pc.lru.PushFront(entry)
	pc.exact[exactKey] = el
	// The structural index keeps the most recent representative of the
	// family; older ones stay reachable via their exact keys.
	pc.structural[structKey] = el
	for pc.lru.Len() > pc.capacity {
		old := pc.lru.Back()
		pc.lru.Remove(old)
		oe := old.Value.(*planEntry)
		delete(pc.exact, oe.exactKey)
		if cur, ok := pc.structural[oe.structKey]; ok && cur == old {
			delete(pc.structural, oe.structKey)
		}
	}
}
