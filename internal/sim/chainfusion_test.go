package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
)

// TestSQLChainFusionBitIdenticalAmplitudes asserts whole-circuit
// fusion's invariant at the simulation level: the sql-chain backend
// produces bitwise-identical amplitudes with chain fusion on and off,
// across layouts, worker counts, and kernels on/off (fusion off when
// kernels are off — the statements still chain through CTEs and must
// stay exact).
func TestSQLChainFusionBitIdenticalAmplitudes(t *testing.T) {
	workloads := []struct {
		name string
		c    *quantum.Circuit
	}{
		{"ghz", circuits.GHZ(10)},
		{"qft", circuits.QFT(6)},
		// 2^14 nonzero amplitudes: interior chain stages span several
		// morsels, exercising the fused two-phase morsel path.
		{"parity", circuits.ParitySuperposition(14)},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			var ref *quantum.State
			for _, chain := range []string{"off", "on"} {
				for _, kernels := range []string{"on", "off"} {
					for _, layout := range []string{"columnar", "row"} {
						for _, workers := range []int{1, 4} {
							b := &SQL{
								Mode:        core.MaterializedChain,
								ChainFusion: chain,
								Kernels:     kernels,
								Layout:      layout,
								Parallelism: workers,
							}
							res, err := b.Run(wl.c)
							if err != nil {
								t.Fatalf("chain=%s kernels=%s layout=%s workers=%d: %v", chain, kernels, layout, workers, err)
							}
							if ref == nil {
								ref = res.State
								continue
							}
							if err := statesBitIdentical(ref, res.State); err != nil {
								t.Fatalf("chain=%s kernels=%s layout=%s workers=%d: %v", chain, kernels, layout, workers, err)
							}
						}
					}
				}
			}
		})
	}
}

// TestSQLChainFusionSpillDecline: under a tight memory budget the
// fused statement must decline to spilling stage-at-a-time execution
// and still complete with amplitudes matching the unconstrained run up
// to bit identity.
func TestSQLChainFusionSpillDecline(t *testing.T) {
	c := circuits.ParitySuperposition(14)
	ref, err := (&SQL{Mode: core.MaterializedChain, ChainFusion: "on", Parallelism: 4}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&SQL{
		Mode:         core.MaterializedChain,
		ChainFusion:  "on",
		Parallelism:  4,
		MemoryBudget: 1 << 20,
		SpillDir:     t.TempDir(),
	}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledRows == 0 {
		t.Fatal("budgeted run did not spill; budget too generous for the test")
	}
	if err := statesBitIdentical(ref.State, res.State); err != nil {
		t.Fatalf("spilling chain run diverged: %v", err)
	}
}
