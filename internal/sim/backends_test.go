package sim

import (
	"errors"
	"math"
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
)

// testCircuits is the cross-validation suite: every backend must produce
// the same state on each of these.
func testCircuits() []*quantum.Circuit {
	return []*quantum.Circuit{
		circuits.GHZ(2),
		circuits.GHZ(5),
		circuits.EqualSuperposition(4),
		circuits.ParityCheck([]bool{true, false, true}),
		circuits.ParitySuperposition(3),
		circuits.QFT(4),
		circuits.WState(4),
		circuits.BernsteinVazirani([]bool{true, true, false}),
		circuits.Grover(3, 5),
		circuits.RandomDense(4, 3, 11),
		circuits.RandomSparse(5, 40, 13),
		circuits.HardwareEfficientAnsatz(3, 2, []float64{.1, .2, .3, .4, .5, .6, .7, .8, .9, 1.0, 1.1, 1.2}),
	}
}

func allBackends(t *testing.T) []Backend {
	return []Backend{
		&StateVector{},
		&Sparse{},
		&SQL{SpillDir: t.TempDir()},
		&SQL{Mode: core.MaterializedChain, SpillDir: t.TempDir()},
		&SQL{Fusion: core.FusionSubset, SpillDir: t.TempDir()},
		&SQL{Encoding: core.EncodingArithmetic, SpillDir: t.TempDir()},
	}
}

// TestBackendsAgree runs every backend on every circuit and demands
// fidelity 1 with the dense reference.
func TestBackendsAgree(t *testing.T) {
	for _, c := range testCircuits() {
		ref, err := (&StateVector{}).Run(c)
		if err != nil {
			t.Fatalf("%s: reference: %v", c.Name(), err)
		}
		for _, b := range allBackends(t) {
			res, err := b.Run(c)
			if err != nil {
				t.Fatalf("%s on %s: %v", c.Name(), b.Name(), err)
			}
			f := res.State.Fidelity(ref.State)
			if math.Abs(f-1) > 1e-9 {
				t.Errorf("%s on %s: fidelity = %v\nref:  %s\ngot:  %s",
					c.Name(), b.Name(), f, ref.State.FormatKet(), res.State.FormatKet())
			}
			if math.Abs(res.State.Norm()-1) > 1e-9 {
				t.Errorf("%s on %s: norm = %v", c.Name(), b.Name(), res.State.Norm())
			}
		}
	}
}

func TestStateVectorBudget(t *testing.T) {
	// 2^20 amplitudes * 16 B = 16 MiB; a 1 MiB budget must refuse.
	sv := &StateVector{MemoryBudget: 1 << 20}
	_, err := sv.Run(circuits.GHZ(20))
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
	// 16 qubits fit in 1 MiB + change.
	sv2 := &StateVector{MemoryBudget: 2 << 20}
	if _, err := sv2.Run(circuits.GHZ(16)); err != nil {
		t.Fatalf("16 qubits should fit: %v", err)
	}
}

func TestSparseBudget(t *testing.T) {
	// Dense circuit on 12 qubits: 4096 entries * 48 B ≈ 197 KB; a 10 KB
	// budget must refuse, while GHZ (2 entries) sails through.
	sp := &Sparse{MemoryBudget: 10 * 1024}
	if _, err := sp.Run(circuits.EqualSuperposition(12)); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("dense err = %v, want budget error", err)
	}
	if _, err := sp.Run(circuits.GHZ(40)); err != nil {
		t.Fatalf("GHZ-40 sparse should fit: %v", err)
	}
}

func TestSQLBudgetSpillVsFail(t *testing.T) {
	dense := circuits.EqualSuperposition(10)
	// With spilling the run completes out-of-core.
	spill := &SQL{MemoryBudget: 16 * 1024, SpillDir: t.TempDir()}
	res, err := spill.Run(dense)
	if err != nil {
		t.Fatalf("spilling run failed: %v", err)
	}
	if res.Stats.SpilledRows == 0 {
		t.Fatal("expected spilled rows under a 16 KB budget")
	}
	if res.State.Len() != 1024 {
		t.Fatalf("support = %d", res.State.Len())
	}
	// With spilling disabled it must fail with the shared sentinel.
	noSpill := &SQL{MemoryBudget: 16 * 1024, DisableSpill: true}
	if _, err := noSpill.Run(dense); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestSQLHugeSparseCircuit(t *testing.T) {
	// 60 qubits are far beyond any dense simulator, but GHZ keeps the
	// relational state at ≤ 2 rows after every stage.
	c := circuits.GHZ(60)
	res, err := (&SQL{SpillDir: t.TempDir()}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Len() != 2 {
		t.Fatalf("support = %d", res.State.Len())
	}
	all1 := uint64(1)<<60 - 1
	inv := 1 / math.Sqrt2
	if math.Abs(real(res.State.Amplitude(all1))-inv) > 1e-9 {
		t.Fatalf("amp = %v", res.State.Amplitude(all1))
	}
}

func TestSQLInitialState(t *testing.T) {
	// X on qubit 0 starting from |01⟩ returns to |00⟩.
	c := quantum.NewCircuit(2).X(0)
	b := &SQL{Initial: quantum.BasisState(2, 1)}
	res, err := b.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Probability(0) < 0.999 {
		t.Fatalf("state = %s", res.State.FormatKet())
	}
}

func TestSQLStatsPopulated(t *testing.T) {
	res, err := (&SQL{Mode: core.MaterializedChain}).Run(circuits.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Backend != "sql-chain" || st.GateCount != 4 || st.FinalNonzeros != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxIntermediateSize < 2 {
		t.Fatalf("max intermediate = %d", st.MaxIntermediateSize)
	}
	if st.WallTime <= 0 {
		t.Fatal("wall time not measured")
	}
}

func TestStateVectorRejectsTooWide(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()
	_, err := (&StateVector{}).Run(circuits.GHZ(40))
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v", err)
	}
}

func TestPruningKeepsExactZeros(t *testing.T) {
	// H then H returns to |0⟩; the |1⟩ amplitude must be pruned, not
	// kept as a 1e-17 artifact.
	c := quantum.NewCircuit(1).H(0).H(0)
	for _, b := range []Backend{&Sparse{}, &SQL{}} {
		res, err := b.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.State.Len() != 1 {
			t.Fatalf("%s: support = %d (%s)", b.Name(), res.State.Len(), res.State.FormatKet())
		}
	}
}
