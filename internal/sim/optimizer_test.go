package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
)

// TestSQLOptimizerBitIdenticalAmplitudes asserts the cost-based
// optimizer's correctness invariant at the simulation level: the SQL
// backend produces bitwise-identical amplitudes with the optimizer on
// and off, on both storage layouts, at one and at four workers, in both
// translation modes. The optimizer's order-sensitive rewrites (CTE
// inlining, build-side flips, join reordering) are guarded away from
// plans with float accumulation (see internal/sqlengine/optimize.go),
// so plan quality changes but amplitude bits never do.
func TestSQLOptimizerBitIdenticalAmplitudes(t *testing.T) {
	workloads := []struct {
		name string
		c    *quantum.Circuit
		mode core.Mode
	}{
		{"ghz", circuits.GHZ(12), core.SingleQuery},
		{"qft", circuits.QFT(7), core.SingleQuery},
		// 2^15 nonzero amplitudes: spans several morsels, so the
		// parallel runs exercise pre-sized aggregation and scan hints.
		{"parity", circuits.ParitySuperposition(15), core.SingleQuery},
		{"qft-chain", circuits.QFT(6), core.MaterializedChain},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			var ref *quantum.State
			for _, optimizer := range []string{"on", "off"} {
				for _, layout := range []string{"columnar", "row"} {
					for _, workers := range []int{1, 4} {
						res, err := (&SQL{Mode: wl.mode, Optimizer: optimizer, Layout: layout, Parallelism: workers}).Run(wl.c)
						if err != nil {
							t.Fatalf("optimizer=%s layout=%s workers=%d: %v", optimizer, layout, workers, err)
						}
						if ref == nil {
							ref = res.State
							continue
						}
						if err := statesBitIdentical(ref, res.State); err != nil {
							t.Fatalf("optimizer=%s layout=%s workers=%d: %v", optimizer, layout, workers, err)
						}
					}
				}
			}
		})
	}
}

// TestSQLOptimizerBitIdenticalUnderBudget covers the out-of-core plan
// choices (grace pre-choice, serial-vs-parallel gather gate): under a
// tight shared budget the amplitudes must still match the unlimited
// reference bit for bit.
func TestSQLOptimizerBitIdenticalUnderBudget(t *testing.T) {
	c := circuits.ParitySuperposition(13)
	refRes, err := (&SQL{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, optimizer := range []string{"on", "off"} {
		res, err := (&SQL{Optimizer: optimizer, MemoryBudget: 1 << 20, SpillDir: t.TempDir(), Parallelism: 2}).Run(c)
		if err != nil {
			t.Fatalf("optimizer=%s: %v", optimizer, err)
		}
		if err := statesBitIdentical(refRes.State, res.State); err != nil {
			t.Fatalf("optimizer=%s under budget: %v", optimizer, err)
		}
	}
}
