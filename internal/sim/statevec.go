package sim

import (
	"context"
	"fmt"
	"math/cmplx"
	"time"

	"qymera/internal/quantum"
)

// StateVector is the conventional dense simulator: the full 2^n
// amplitude vector held in memory, the baseline the paper compares the
// RDBMS approach against. It is exact and fast per gate, but its memory
// is Θ(2^n) regardless of how sparse the state is.
type StateVector struct {
	// MemoryBudget, when positive, caps the bytes of amplitude storage;
	// runs needing more fail with ErrMemoryBudget (modeling the 2.0 GB
	// cap of the paper's preliminary experiment).
	MemoryBudget int64
	// Initial overrides the |0...0⟩ initial state.
	Initial *quantum.State
}

// Name implements Backend.
func (sv *StateVector) Name() string { return "statevector" }

// maxDenseQubits guards against absurd allocations independent of the
// budget (2^30 amplitudes = 16 GiB).
const maxDenseQubits = 30

// Run implements Backend.
func (sv *StateVector) Run(c *quantum.Circuit) (*Result, error) {
	return sv.RunContext(context.Background(), c)
}

// RunContext implements Backend; cancellation is checked between gates.
func (sv *StateVector) RunContext(ctx context.Context, c *quantum.Circuit) (*Result, error) {
	start := time.Now()
	n := c.NumQubits()
	if n > maxDenseQubits {
		return nil, fmt.Errorf("statevector: %d qubits exceed the dense limit of %d: %w", n, maxDenseQubits, ErrMemoryBudget)
	}
	dim := uint64(1) << uint(n)
	// One amplitude vector plus a 2^k scratch block per gate; the
	// vector dominates.
	needed := int64(dim) * 16
	if sv.MemoryBudget > 0 && needed > sv.MemoryBudget {
		return nil, fmt.Errorf("statevector: needs %d bytes for %d qubits, budget %d: %w", needed, n, sv.MemoryBudget, ErrMemoryBudget)
	}

	amp := make([]complex128, dim)
	if sv.Initial != nil {
		if sv.Initial.NumQubits() != n {
			return nil, fmt.Errorf("statevector: initial state width %d != circuit width %d", sv.Initial.NumQubits(), n)
		}
		for _, idx := range sv.Initial.Indices() {
			amp[idx] = sv.Initial.Amplitude(idx)
		}
	} else {
		amp[0] = 1
	}

	for _, g := range c.Gates() {
		if err := ctxErr(sv.Name(), ctx); err != nil {
			return nil, err
		}
		m, err := g.Matrix()
		if err != nil {
			return nil, err
		}
		applyDense(amp, n, g.Qubits, m.Data)
	}

	state := quantum.NewState(n)
	for i, a := range amp {
		if cmplx.Abs(a) > pruneEpsDefault {
			state.Set(uint64(i), a)
		}
	}
	return &Result{
		State: state,
		Stats: Stats{
			Backend:             sv.Name(),
			WallTime:            time.Since(start),
			GateCount:           c.Len(),
			PeakBytes:           needed,
			FinalNonzeros:       state.Len(),
			MaxIntermediateSize: int64(dim),
		},
	}, nil
}

// applyDense applies a k-qubit gate (row-major 2^k × 2^k matrix, element
// [out*dim+in]) to the dense amplitude vector in place.
func applyDense(amp []complex128, n int, qubits []int, m []complex128) {
	k := len(qubits)
	kdim := 1 << uint(k)
	var mask uint64
	for _, q := range qubits {
		mask |= uint64(1) << uint(q)
	}
	scatter := make([]uint64, kdim)
	for x := 0; x < kdim; x++ {
		var s uint64
		for j, q := range qubits {
			if x>>uint(j)&1 == 1 {
				s |= uint64(1) << uint(q)
			}
		}
		scatter[x] = s
	}
	local := make([]complex128, kdim)
	dim := uint64(1) << uint(n)
	for base := uint64(0); base < dim; base++ {
		if base&mask != 0 {
			continue // enumerate only indices with the gate's bits clear
		}
		for x := 0; x < kdim; x++ {
			local[x] = amp[base|scatter[x]]
		}
		for out := 0; out < kdim; out++ {
			var sum complex128
			row := m[out*kdim : (out+1)*kdim]
			for in := 0; in < kdim; in++ {
				if row[in] != 0 {
					sum += row[in] * local[in]
				}
			}
			amp[base|scatter[out]] = sum
		}
	}
}
