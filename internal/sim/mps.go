package sim

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"qymera/internal/linalg"
	"qymera/internal/quantum"
)

// MPS is a matrix-product-state (tensor network) simulator, the paper's
// "MPS" backend: the state is a chain of rank-3 tensors, two-qubit gates
// contract neighbouring tensors and split them back with a truncated
// SVD. Memory scales with the entanglement (bond dimension), not 2^n.
//
// Supported gates: every 1- and 2-qubit gate in the registry (non-
// adjacent pairs are routed with SWAPs). Gates on 3+ qubits are not
// supported — decompose them first.
type MPS struct {
	// MaxBond caps the bond dimension χ; 0 means unlimited (exact).
	MaxBond int
	// TruncEps drops singular values below this threshold (default
	// 1e-12); the discarded weight accumulates in Stats.Extra.
	TruncEps float64
	// MemoryBudget, when positive, caps the total tensor bytes.
	MemoryBudget int64
	// Initial overrides the |0...0⟩ initial state. It must be a
	// product-like small support state; arbitrary states are built by
	// summing basis MPS which can be exponential, so only basis states
	// are accepted.
	InitialBasis uint64
	HasInitial   bool
}

// Name implements Backend.
func (m *MPS) Name() string { return "mps" }

// mpsTensor is a rank-3 tensor A[l][s][r]: left bond, physical (0/1),
// right bond.
type mpsTensor struct {
	dl, dr int
	data   []complex128 // index (l*2+s)*dr + r
}

func (t *mpsTensor) at(l, s, r int) complex128 { return t.data[(l*2+s)*t.dr+r] }
func (t *mpsTensor) set(l, s, r int, v complex128) {
	t.data[(l*2+s)*t.dr+r] = v
}

func newMPSTensor(dl, dr int) *mpsTensor {
	return &mpsTensor{dl: dl, dr: dr, data: make([]complex128, dl*2*dr)}
}

// Run implements Backend.
func (m *MPS) Run(c *quantum.Circuit) (*Result, error) {
	return m.RunContext(context.Background(), c)
}

// RunContext implements Backend; cancellation is checked between gates.
func (m *MPS) RunContext(ctx context.Context, c *quantum.Circuit) (*Result, error) {
	start := time.Now()
	n := c.NumQubits()
	eps := m.TruncEps
	if eps <= 0 {
		eps = 1e-12
	}

	// Initial product state.
	tensors := make([]*mpsTensor, n)
	for i := 0; i < n; i++ {
		t := newMPSTensor(1, 1)
		bit := 0
		if m.HasInitial {
			bit = int(m.InitialBasis >> uint(i) & 1)
		}
		t.set(0, bit, 0, 1)
		tensors[i] = t
	}

	st := &mpsState{tensors: tensors, maxBond: m.MaxBond, eps: eps}
	var peakBytes int64
	var maxElems int64

	for _, g := range c.Gates() {
		if err := ctxErr(m.Name(), ctx); err != nil {
			return nil, err
		}
		mat, err := g.Matrix()
		if err != nil {
			return nil, err
		}
		switch len(g.Qubits) {
		case 1:
			st.apply1(g.Qubits[0], mat)
		case 2:
			if err := st.apply2(g.Qubits[0], g.Qubits[1], mat); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("mps: %d-qubit gate %s is not supported", len(g.Qubits), g.Name)
		}
		if b := st.bytes(); b > peakBytes {
			peakBytes = b
		}
		if e := st.elems(); e > maxElems {
			maxElems = e
		}
		if m.MemoryBudget > 0 && st.bytes() > m.MemoryBudget {
			return nil, fmt.Errorf("mps: %d tensor bytes exceed budget %d: %w", st.bytes(), m.MemoryBudget, ErrMemoryBudget)
		}
	}

	state, err := st.extract(pruneEpsDefault)
	if err != nil {
		return nil, err
	}
	state.Normalize() // compensate accumulated truncation loss

	return &Result{
		State: state,
		Stats: Stats{
			Backend:             m.Name(),
			WallTime:            time.Since(start),
			GateCount:           c.Len(),
			PeakBytes:           peakBytes,
			FinalNonzeros:       state.Len(),
			MaxIntermediateSize: maxElems,
			Extra:               fmt.Sprintf("maxBond=%d discarded=%.3g", st.maxSeenBond, st.discarded),
		},
	}, nil
}

type mpsState struct {
	tensors     []*mpsTensor
	maxBond     int
	eps         float64
	discarded   float64
	maxSeenBond int
}

func (st *mpsState) bytes() int64 {
	var b int64
	for _, t := range st.tensors {
		b += int64(len(t.data)) * 16
	}
	return b
}

func (st *mpsState) elems() int64 {
	var e int64
	for _, t := range st.tensors {
		e += int64(len(t.data))
	}
	return e
}

// apply1 contracts a single-qubit matrix into site q.
func (st *mpsState) apply1(q int, m *linalg.Matrix) {
	t := st.tensors[q]
	out := newMPSTensor(t.dl, t.dr)
	for l := 0; l < t.dl; l++ {
		for r := 0; r < t.dr; r++ {
			a0 := t.at(l, 0, r)
			a1 := t.at(l, 1, r)
			out.set(l, 0, r, m.At(0, 0)*a0+m.At(0, 1)*a1)
			out.set(l, 1, r, m.At(1, 0)*a0+m.At(1, 1)*a1)
		}
	}
	st.tensors[q] = out
}

// swapMat is the SWAP matrix used for routing non-adjacent gates.
var swapMat = quantum.Gate{Name: "SWAP", Qubits: []int{0, 1}}.MustMatrix()

// apply2 applies a two-qubit gate with local bit 0 on qubit a, bit 1 on
// qubit b, routing with SWAPs when they are not adjacent.
func (st *mpsState) apply2(a, b int, m *linalg.Matrix) error {
	if a == b {
		return fmt.Errorf("mps: two-qubit gate with repeated qubit %d", a)
	}
	// Route a next to b with SWAPs, tracked so we can swap back.
	var swaps []int // left site of each SWAP applied
	for a < b-1 {
		if err := st.applyAdjacentGate(a, swapMat); err != nil {
			return err
		}
		swaps = append(swaps, a)
		a++
	}
	for a > b+1 {
		if err := st.applyAdjacentGate(a-1, swapMat); err != nil {
			return err
		}
		swaps = append(swaps, a-1)
		a--
	}

	// Now |a-b| == 1. Build the site-ordered gate: local site bit 0 is
	// the lower site index.
	lo := a
	gate := m
	if a < b {
		// bit0 (qubit a) sits at the lower site: matrix indexes already
		// match (s_lo + 2*s_hi) = (bit0 + 2*bit1).
	} else {
		lo = b
		gate = permuteBits(m)
	}
	if err := st.applyAdjacentGate(lo, gate); err != nil {
		return err
	}
	// Undo routing.
	for i := len(swaps) - 1; i >= 0; i-- {
		if err := st.applyAdjacentGate(swaps[i], swapMat); err != nil {
			return err
		}
	}
	return nil
}

// permuteBits swaps the two local bits of a 4x4 gate matrix.
func permuteBits(m *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(4, 4)
	perm := []int{0, 2, 1, 3}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out.Set(perm[i], perm[j], m.At(i, j))
		}
	}
	return out
}

// applyAdjacentGate contracts sites (p, p+1) with a 4x4 gate whose local
// bit 0 is site p, applies it, and splits with a truncated SVD.
func (st *mpsState) applyAdjacentGate(p int, gate *linalg.Matrix) error {
	t1, t2 := st.tensors[p], st.tensors[p+1]
	if t1.dr != t2.dl {
		return fmt.Errorf("mps: internal: bond mismatch %d vs %d at site %d", t1.dr, t2.dl, p)
	}
	dl, k, dr := t1.dl, t1.dr, t2.dr

	// theta[l, s1, s2, r] = Σ_k t1[l,s1,k]·t2[k,s2,r]
	theta := make([]complex128, dl*2*2*dr)
	idx := func(l, s1, s2, r int) int { return ((l*2+s1)*2+s2)*dr + r }
	for l := 0; l < dl; l++ {
		for s1 := 0; s1 < 2; s1++ {
			for kk := 0; kk < k; kk++ {
				a := t1.at(l, s1, kk)
				if a == 0 {
					continue
				}
				for s2 := 0; s2 < 2; s2++ {
					for r := 0; r < dr; r++ {
						theta[idx(l, s1, s2, r)] += a * t2.at(kk, s2, r)
					}
				}
			}
		}
	}

	// Apply the gate on (s1, s2): in = s1 + 2*s2, out likewise.
	out := make([]complex128, len(theta))
	for l := 0; l < dl; l++ {
		for r := 0; r < dr; r++ {
			var in [4]complex128
			for s1 := 0; s1 < 2; s1++ {
				for s2 := 0; s2 < 2; s2++ {
					in[s1+2*s2] = theta[idx(l, s1, s2, r)]
				}
			}
			for o := 0; o < 4; o++ {
				var sum complex128
				for i := 0; i < 4; i++ {
					if g := gate.At(o, i); g != 0 {
						sum += g * in[i]
					}
				}
				out[idx(l, o&1, o>>1, r)] = sum
			}
		}
	}

	// Reshape to (dl*2) x (2*dr) and SVD.
	mat := linalg.NewMatrix(dl*2, 2*dr)
	for l := 0; l < dl; l++ {
		for s1 := 0; s1 < 2; s1++ {
			for s2 := 0; s2 < 2; s2++ {
				for r := 0; r < dr; r++ {
					mat.Set(l*2+s1, s2*dr+r, out[idx(l, s1, s2, r)])
				}
			}
		}
	}
	svd := linalg.ComputeSVD(mat)
	trunc, discarded := svd.Truncate(st.maxBond, st.eps)
	st.discarded += discarded
	chi := len(trunc.S)
	if chi > st.maxSeenBond {
		st.maxSeenBond = chi
	}

	// Left tensor = U, right tensor = diag(S)·V†.
	nt1 := newMPSTensor(dl, chi)
	for l := 0; l < dl; l++ {
		for s1 := 0; s1 < 2; s1++ {
			for x := 0; x < chi; x++ {
				nt1.set(l, s1, x, trunc.U.At(l*2+s1, x))
			}
		}
	}
	nt2 := newMPSTensor(chi, dr)
	vh := trunc.V.ConjTranspose() // chi x (2*dr)
	for x := 0; x < chi; x++ {
		for s2 := 0; s2 < 2; s2++ {
			for r := 0; r < dr; r++ {
				nt2.set(x, s2, r, complex(trunc.S[x], 0)*vh.At(x, s2*dr+r))
			}
		}
	}
	st.tensors[p] = nt1
	st.tensors[p+1] = nt2
	return nil
}

// extract converts the MPS to a sparse state via depth-first search with
// exact branch-probability pruning: right environments bound the total
// weight under any prefix, so only branches with weight > eps² are
// visited.
func (st *mpsState) extract(eps float64) (*quantum.State, error) {
	n := len(st.tensors)
	// Right environments: env[i][a*χ+a'] = Σ over suffix states of
	// A_i..A_{n-1} contractions (Gram matrices).
	env := make([][]complex128, n+1)
	env[n] = []complex128{1}
	for i := n - 1; i >= 0; i-- {
		t := st.tensors[i]
		e := env[i+1] // t.dr x t.dr
		cur := make([]complex128, t.dl*t.dl)
		for a := 0; a < t.dl; a++ {
			for a2 := 0; a2 < t.dl; a2++ {
				var sum complex128
				for s := 0; s < 2; s++ {
					for b := 0; b < t.dr; b++ {
						for b2 := 0; b2 < t.dr; b2++ {
							sum += t.at(a, s, b) * cmplx.Conj(t.at(a2, s, b2)) * e[b*t.dr+b2]
						}
					}
				}
				cur[a*t.dl+a2] = sum
			}
		}
		env[i] = cur
	}

	out := quantum.NewState(n)
	eps2 := eps * eps
	// DFS with prefix vector v over the current bond.
	var walk func(site int, prefix uint64, v []complex128)
	walk = func(site int, prefix uint64, v []complex128) {
		if site == n {
			if len(v) == 1 && cmplx.Abs(v[0]) > eps {
				out.Set(prefix, v[0])
			}
			return
		}
		t := st.tensors[site]
		for s := 0; s < 2; s++ {
			nv := make([]complex128, t.dr)
			for b := 0; b < t.dr; b++ {
				var sum complex128
				for a := 0; a < t.dl; a++ {
					sum += v[a] * t.at(a, s, b)
				}
				nv[b] = sum
			}
			// Branch weight = nv · env[site+1] · nv†.
			e := env[site+1]
			var w complex128
			for b := 0; b < t.dr; b++ {
				for b2 := 0; b2 < t.dr; b2++ {
					w += nv[b] * cmplx.Conj(nv[b2]) * e[b*t.dr+b2]
				}
			}
			if math.Abs(real(w)) <= eps2 {
				continue
			}
			var np uint64
			if s == 1 {
				np = prefix | uint64(1)<<uint(site)
			} else {
				np = prefix
			}
			walk(site+1, np, nv)
		}
	}
	walk(0, 0, []complex128{1})
	return out, nil
}
