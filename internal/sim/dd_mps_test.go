package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
)

// twoQubitOnly reports whether a circuit uses only 1- and 2-qubit gates
// (the MPS backend's supported set).
func twoQubitOnly(c *quantum.Circuit) bool {
	for _, g := range c.Gates() {
		if len(g.Qubits) > 2 {
			return false
		}
	}
	return true
}

func TestDDAgreesWithReference(t *testing.T) {
	for _, c := range testCircuits() {
		ref, err := (&StateVector{}).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&DD{}).Run(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-9 {
			t.Errorf("%s on dd: fidelity = %v\nref: %s\ngot: %s",
				c.Name(), f, ref.State.FormatKet(), res.State.FormatKet())
		}
	}
}

func TestMPSAgreesWithReference(t *testing.T) {
	for _, c := range testCircuits() {
		if !twoQubitOnly(c) {
			continue
		}
		ref, err := (&StateVector{}).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&MPS{}).Run(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-8 {
			t.Errorf("%s on mps: fidelity = %v\nref: %s\ngot: %s",
				c.Name(), f, ref.State.FormatKet(), res.State.FormatKet())
		}
	}
}

func TestDDGHZIsLinearSize(t *testing.T) {
	res, err := (&DD{}).Run(circuits.GHZ(40))
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Len() != 2 {
		t.Fatalf("support = %d", res.State.Len())
	}
	// A GHZ diagram is a chain: O(n) unique nodes, far below 2^n.
	if res.Stats.MaxIntermediateSize > 200 {
		t.Fatalf("DD used %d nodes for GHZ-40", res.Stats.MaxIntermediateSize)
	}
}

func TestDDBudget(t *testing.T) {
	// A dense random circuit blows up the node count; a tiny budget
	// must trip.
	d := &DD{MemoryBudget: 4 * 1024}
	if _, err := d.Run(circuits.RandomDense(12, 4, 3)); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestDDInitialState(t *testing.T) {
	init := quantum.NewState(2)
	inv := complex(1/math.Sqrt2, 0)
	init.Set(1, inv)
	init.Set(2, inv)
	d := &DD{Initial: init}
	res, err := d.Run(quantum.NewCircuit(2)) // identity circuit
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(init); math.Abs(f-1) > 1e-12 {
		t.Fatalf("fidelity = %v (%s)", f, res.State.FormatKet())
	}
}

func TestMPSGHZBondIsTwo(t *testing.T) {
	res, err := (&MPS{}).Run(circuits.GHZ(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Len() != 2 {
		t.Fatalf("support = %d", res.State.Len())
	}
	if !strings.Contains(res.Stats.Extra, "maxBond=2") {
		t.Fatalf("extra = %s, want maxBond=2", res.Stats.Extra)
	}
}

func TestMPSNonAdjacentGates(t *testing.T) {
	// CX(0, 3) and CX(3, 1) need swap routing.
	c := quantum.NewCircuit(4).H(0).CX(0, 3).CX(3, 1)
	ref, err := (&StateVector{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&MPS{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-9 {
		t.Fatalf("fidelity = %v", f)
	}
}

func TestMPSReversedQubitOrder(t *testing.T) {
	// Control above target: CX(1, 0).
	c := quantum.NewCircuit(2).H(1).CX(1, 0)
	ref, _ := (&StateVector{}).Run(c)
	res, err := (&MPS{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-9 {
		t.Fatalf("fidelity = %v\nref %s\ngot %s", f, ref.State.FormatKet(), res.State.FormatKet())
	}
}

func TestMPSTruncationReportsDiscardedWeight(t *testing.T) {
	// A heavily entangling circuit with a tight bond cap must discard
	// weight but still return a normalized state.
	c := circuits.RandomDense(8, 6, 5)
	res, err := (&MPS{MaxBond: 2}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.State.Norm()-1) > 1e-6 {
		t.Fatalf("norm = %v", res.State.Norm())
	}
	if !strings.Contains(res.Stats.Extra, "discarded=") {
		t.Fatalf("extra = %s", res.Stats.Extra)
	}
	// Exact run for comparison: capped fidelity should be below 1.
	exact, err := (&MPS{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	f := res.State.Fidelity(exact.State)
	if f > 0.999999 {
		t.Logf("note: truncation did not reduce fidelity (f=%v); circuit weakly entangled", f)
	}
}

func TestMPSRejectsThreeQubitGates(t *testing.T) {
	c := quantum.NewCircuit(3).CCX(0, 1, 2)
	if _, err := (&MPS{}).Run(c); err == nil {
		t.Fatal("expected unsupported-gate error")
	}
}

func TestMPSBudget(t *testing.T) {
	mp := &MPS{MemoryBudget: 256}
	if _, err := mp.Run(circuits.RandomDense(10, 4, 9)); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestMPSInitialBasis(t *testing.T) {
	m := &MPS{InitialBasis: 5, HasInitial: true}
	res, err := m.Run(quantum.NewCircuit(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Probability(5) < 0.999 {
		t.Fatalf("state = %s", res.State.FormatKet())
	}
}

func TestDDMPSOnQFT(t *testing.T) {
	c := circuits.QFT(6)
	ref, _ := (&StateVector{}).Run(c)
	for _, b := range []Backend{&DD{}, &MPS{}} {
		res, err := b.Run(c)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-8 {
			t.Errorf("%s: fidelity = %v", b.Name(), f)
		}
	}
}
