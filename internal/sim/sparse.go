package sim

import (
	"context"
	"fmt"
	"math/cmplx"
	"time"

	"qymera/internal/quantum"
)

// Sparse is a hash-map simulator storing only nonzero amplitudes — the
// in-memory analogue of the relational T(s, r, i) representation. It is
// the natural middle ground between the dense state vector and the SQL
// backend: same asymptotics as the relational encoding, no relational
// engine underneath.
type Sparse struct {
	// MemoryBudget, when positive, caps the estimated bytes of the
	// amplitude map (48 bytes per entry, two live maps during a gate).
	MemoryBudget int64
	// PruneEps drops amplitudes with |a| <= eps after each gate;
	// zero uses the shared default.
	PruneEps float64
	// Initial overrides the |0...0⟩ initial state.
	Initial *quantum.State
}

// Name implements Backend.
func (sp *Sparse) Name() string { return "sparse" }

// sparseEntryBytes estimates map overhead per stored amplitude.
const sparseEntryBytes = 48

// Run implements Backend.
func (sp *Sparse) Run(c *quantum.Circuit) (*Result, error) {
	return sp.RunContext(context.Background(), c)
}

// RunContext implements Backend; cancellation is checked between gates.
func (sp *Sparse) RunContext(ctx context.Context, c *quantum.Circuit) (*Result, error) {
	start := time.Now()
	n := c.NumQubits()
	eps := sp.PruneEps
	if eps <= 0 {
		eps = pruneEpsDefault
	}

	cur := make(map[uint64]complex128)
	if sp.Initial != nil {
		if sp.Initial.NumQubits() != n {
			return nil, fmt.Errorf("sparse: initial state width %d != circuit width %d", sp.Initial.NumQubits(), n)
		}
		for _, idx := range sp.Initial.Indices() {
			cur[idx] = sp.Initial.Amplitude(idx)
		}
	} else {
		cur[0] = 1
	}

	var maxEntries int64 = int64(len(cur))
	var peakBytes int64

	for _, g := range c.Gates() {
		if err := ctxErr(sp.Name(), ctx); err != nil {
			return nil, err
		}
		m, err := g.Matrix()
		if err != nil {
			return nil, err
		}
		k := len(g.Qubits)
		kdim := 1 << uint(k)
		var mask uint64
		for _, q := range g.Qubits {
			mask |= uint64(1) << uint(q)
		}
		scatter := make([]uint64, kdim)
		for x := 0; x < kdim; x++ {
			var s uint64
			for j, q := range g.Qubits {
				if x>>uint(j)&1 == 1 {
					s |= uint64(1) << uint(q)
				}
			}
			scatter[x] = s
		}
		gather := func(s uint64) int {
			x := 0
			for j, q := range g.Qubits {
				x |= int(s>>uint(q)&1) << uint(j)
			}
			return x
		}

		next := make(map[uint64]complex128, len(cur))
		for s, a := range cur {
			in := gather(s)
			base := s &^ mask
			for out := 0; out < kdim; out++ {
				coef := m.Data[out*kdim+in]
				if coef == 0 {
					continue
				}
				ns := base | scatter[out]
				v := next[ns] + a*coef
				if v == 0 {
					delete(next, ns)
				} else {
					next[ns] = v
				}
			}
		}
		// Prune tiny amplitudes to keep the support honest.
		for s, a := range next {
			if cmplx.Abs(a) <= eps {
				delete(next, s)
			}
		}
		live := int64(len(cur) + len(next))
		if liveBytes := live * sparseEntryBytes; liveBytes > peakBytes {
			peakBytes = liveBytes
		}
		if sp.MemoryBudget > 0 && live*sparseEntryBytes > sp.MemoryBudget {
			return nil, fmt.Errorf("sparse: %d live entries need %d bytes, budget %d: %w",
				live, live*sparseEntryBytes, sp.MemoryBudget, ErrMemoryBudget)
		}
		if int64(len(next)) > maxEntries {
			maxEntries = int64(len(next))
		}
		cur = next
	}

	state := quantum.NewState(n)
	for s, a := range cur {
		state.Set(s, a)
	}
	return &Result{
		State: state,
		Stats: Stats{
			Backend:             sp.Name(),
			WallTime:            time.Since(start),
			GateCount:           c.Len(),
			PeakBytes:           peakBytes,
			FinalNonzeros:       state.Len(),
			MaxIntermediateSize: maxEntries,
		},
	}, nil
}
