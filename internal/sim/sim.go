// Package sim defines the common simulation-backend interface of
// Qymera's Simulation Layer and its "Method Selector": every simulation
// method — the RDBMS/SQL backend, dense state vector, sparse map, matrix
// product state, and decision diagram — implements Backend, so circuits
// can be executed and benchmarked uniformly across methods.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"qymera/internal/quantum"
)

// ErrMemoryBudget is returned by a backend whose memory requirement
// exceeds the configured budget. The benchmarking harness uses it to
// find the largest circuit a method can simulate under a cap (the
// paper's preliminary experiment).
var ErrMemoryBudget = errors.New("sim: memory budget exceeded")

// Stats captures per-run metrics reported by every backend.
type Stats struct {
	Backend   string
	WallTime  time.Duration
	GateCount int
	// PeakBytes is the backend's own estimate of its peak working-set
	// size in bytes (state representation plus transient buffers).
	PeakBytes int64
	// FinalNonzeros is the support size of the final state.
	FinalNonzeros int
	// MaxIntermediateSize is the largest intermediate representation
	// observed: nonzero rows (SQL/sparse), amplitudes (dense), tensor
	// elements (MPS), or nodes (DD).
	MaxIntermediateSize int64
	// SpilledRows counts rows written to disk (SQL backend only).
	SpilledRows int64
	// Extra carries backend-specific notes, e.g. "maxBond=7".
	Extra string
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %v, peak=%dB, final=%d, maxInter=%d",
		s.Backend, s.WallTime, s.PeakBytes, s.FinalNonzeros, s.MaxIntermediateSize)
}

// Result is a completed simulation: the final state plus metrics.
type Result struct {
	State *quantum.State
	Stats Stats
}

// Backend is one simulation method.
type Backend interface {
	// Name identifies the method in benchmark reports.
	Name() string
	// Run simulates the circuit from |0...0⟩ (or the backend's
	// configured initial state) and returns the final state.
	Run(c *quantum.Circuit) (*Result, error)
	// RunContext is Run with cancellation: when ctx is cancelled the
	// simulation aborts early — the in-memory backends between gates,
	// the SQL backend additionally inside a gate stage at the engine's
	// batch/morsel boundaries — releasing all resources, and returns an
	// error wrapping ctx.Err(). Run is RunContext with a background
	// context.
	RunContext(ctx context.Context, c *quantum.Circuit) (*Result, error)
}

// ctxErr adapts a context error into the backends' error style; nil in,
// nil out.
func ctxErr(name string, ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: simulation cancelled: %w", name, err)
	}
	return nil
}

// pruneEpsDefault is the amplitude magnitude below which sparse
// representations drop basis states; it matches the translator's default
// pruning threshold.
const pruneEpsDefault = 1e-12
