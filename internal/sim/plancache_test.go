package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
)

func sweepPoint(theta float64) *quantum.Circuit {
	return circuits.HardwareEfficientAnsatz(4, 2, []float64{
		theta, theta * 1.1, theta * 1.2, theta * 1.3,
		theta * 1.4, theta * 1.5, theta * 1.6, theta * 1.7,
		theta * 1.8, theta * 1.9, theta * 2.0, theta * 2.1,
		theta * 2.2, theta * 2.3, theta * 2.4, theta * 2.5,
	})
}

// TestPlanCacheTiers checks the two hit tiers: repeats hit exactly,
// sweep points hit structurally, unrelated circuits miss.
func TestPlanCacheTiers(t *testing.T) {
	cache := NewPlanCache(8)
	b := &SQL{Cache: cache}

	if _, err := b.Run(sweepPoint(0.3)); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.StructuralHits != 0 {
		t.Fatalf("after cold run: %+v", st)
	}

	if _, err := b.Run(sweepPoint(0.3)); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.Hits != 1 {
		t.Fatalf("repeat did not hit exactly: %+v", st)
	}

	if _, err := b.Run(sweepPoint(0.7)); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.StructuralHits != 1 {
		t.Fatalf("sweep point did not hit structurally: %+v", st)
	}

	if _, err := b.Run(circuits.GHZ(5)); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.Misses != 2 {
		t.Fatalf("unrelated circuit did not miss: %+v", st)
	}
}

// TestPlanCacheBitIdenticalAmplitudes is the cache's correctness
// criterion: every tier must produce amplitudes bit-identical to an
// uncached run.
func TestPlanCacheBitIdenticalAmplitudes(t *testing.T) {
	workloads := []*quantum.Circuit{
		sweepPoint(0.3), sweepPoint(0.3), sweepPoint(0.9), // miss, exact, structural
		circuits.GHZ(8), circuits.QFT(6),
	}
	cached := &SQL{Cache: NewPlanCache(8)}
	for i, c := range workloads {
		want, err := (&SQL{}).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := statesBitIdentical(want.State, got.State); err != nil {
			t.Fatalf("workload %d (cache %+v): %v", i, cached.Cache.Stats(), err)
		}
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 || st.StructuralHits == 0 {
		t.Fatalf("workload mix exercised no cache tier: %+v", st)
	}
}

// TestPlanCacheEviction keeps the LRU bounded.
func TestPlanCacheEviction(t *testing.T) {
	cache := NewPlanCache(2)
	b := &SQL{Cache: cache}
	for _, n := range []int{3, 4, 5, 6} {
		if _, err := b.Run(circuits.GHZ(n)); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Entries != 2 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
	// The oldest entry (GHZ-3) must have been evicted: re-running it
	// misses again.
	before := cache.Stats().Misses
	if _, err := b.Run(circuits.GHZ(3)); err != nil {
		t.Fatal(err)
	}
	if after := cache.Stats().Misses; after != before+1 {
		t.Fatalf("evicted entry still hit: misses %d -> %d", before, after)
	}
}
