package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
)

func sweepPoint(theta float64) *quantum.Circuit {
	return circuits.HardwareEfficientAnsatz(4, 2, []float64{
		theta, theta * 1.1, theta * 1.2, theta * 1.3,
		theta * 1.4, theta * 1.5, theta * 1.6, theta * 1.7,
		theta * 1.8, theta * 1.9, theta * 2.0, theta * 2.1,
		theta * 2.2, theta * 2.3, theta * 2.4, theta * 2.5,
	})
}

// TestPlanCacheTiers checks the two hit tiers: repeats hit exactly,
// sweep points hit structurally, unrelated circuits miss.
func TestPlanCacheTiers(t *testing.T) {
	cache := NewPlanCache(8)
	b := &SQL{Cache: cache}

	if _, err := b.Run(sweepPoint(0.3)); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.StructuralHits != 0 {
		t.Fatalf("after cold run: %+v", st)
	}

	if _, err := b.Run(sweepPoint(0.3)); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.Hits != 1 {
		t.Fatalf("repeat did not hit exactly: %+v", st)
	}

	if _, err := b.Run(sweepPoint(0.7)); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.StructuralHits != 1 {
		t.Fatalf("sweep point did not hit structurally: %+v", st)
	}

	if _, err := b.Run(circuits.GHZ(5)); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.Misses != 2 {
		t.Fatalf("unrelated circuit did not miss: %+v", st)
	}
}

// TestPlanCacheBitIdenticalAmplitudes is the cache's correctness
// criterion: every tier must produce amplitudes bit-identical to an
// uncached run.
func TestPlanCacheBitIdenticalAmplitudes(t *testing.T) {
	workloads := []*quantum.Circuit{
		sweepPoint(0.3), sweepPoint(0.3), sweepPoint(0.9), // miss, exact, structural
		circuits.GHZ(8), circuits.QFT(6),
	}
	cached := &SQL{Cache: NewPlanCache(8)}
	for i, c := range workloads {
		want, err := (&SQL{}).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := statesBitIdentical(want.State, got.State); err != nil {
			t.Fatalf("workload %d (cache %+v): %v", i, cached.Cache.Stats(), err)
		}
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 || st.StructuralHits == 0 {
		t.Fatalf("workload mix exercised no cache tier: %+v", st)
	}
}

// TestPlanCacheEviction keeps the LRU bounded. Capacity is enforced
// per shard (rounded up to one entry each), so the effective bound for
// NewPlanCache(2) is planCacheShards entries, and eviction order is
// LRU within each shard rather than globally.
func TestPlanCacheEviction(t *testing.T) {
	cache := NewPlanCache(2)
	b := &SQL{Cache: cache}
	const distinct = 2 * planCacheShards
	for n := 0; n < distinct; n++ {
		if _, err := b.Run(circuits.GHZ(3 + n)); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries > planCacheShards {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
	if st.Entries == distinct {
		t.Fatalf("no eviction after %d distinct inserts: %+v", distinct, st)
	}
	// Re-running the full set must re-translate every evicted entry: at
	// least distinct-planCacheShards additional misses.
	before := st.Misses
	for n := 0; n < distinct; n++ {
		if _, err := b.Run(circuits.GHZ(3 + n)); err != nil {
			t.Fatal(err)
		}
	}
	if after := cache.Stats().Misses; after < before+distinct-planCacheShards {
		t.Fatalf("evicted entries still hit: misses %d -> %d", before, after)
	}
}

// TestPlanCacheShardStats checks that the per-shard counters exposed to
// /metrics sum to the aggregate view.
func TestPlanCacheShardStats(t *testing.T) {
	cache := NewPlanCache(0)
	b := &SQL{Cache: cache}
	work := []*quantum.Circuit{
		sweepPoint(0.3), sweepPoint(0.3), sweepPoint(0.9),
		circuits.GHZ(5), circuits.GHZ(7), circuits.QFT(4),
	}
	for _, c := range work {
		if _, err := b.Run(c); err != nil {
			t.Fatal(err)
		}
	}
	shards := cache.ShardStats()
	if len(shards) != planCacheShards {
		t.Fatalf("ShardStats returned %d shards, want %d", len(shards), planCacheShards)
	}
	var sum PlanCacheStats
	for _, s := range shards {
		sum.Hits += s.Hits
		sum.StructuralHits += s.StructuralHits
		sum.Misses += s.Misses
		sum.Entries += s.Entries
	}
	if total := cache.Stats(); sum != total {
		t.Fatalf("shard stats do not sum to aggregate: sum %+v, total %+v", sum, total)
	}
	if sum.Misses < 2 {
		t.Fatalf("workload produced too few misses to exercise sharding: %+v", sum)
	}
}
