package sim

import (
	"context"
	"fmt"
	"strings"
	"time"

	"qymera/internal/core"
	"qymera/internal/obs"
	"qymera/internal/quantum"
	"qymera/internal/sqlengine"
)

// SQL is the RDBMS backend — the paper's contribution. It translates the
// circuit to SQL (internal/core) and executes it on the embedded
// relational engine (internal/sqlengine): every gate is a join +
// group-by over the nonzero-amplitude table, the engine's optimizer and
// operators do the rest, and the buffer manager spills to disk for
// out-of-core simulation (§3.3). The engine executes vectorized (batches
// of ~1024 rows with selection vectors, streaming hash join/aggregate)
// and morsel-parallel: gate-stage joins and aggregations split the
// nonzero-amplitude table into fixed morsels processed by Parallelism
// worker goroutines. Morsel boundaries and merge order depend only on
// the data, so amplitudes are bit-identical across worker counts.
type SQL struct {
	// Mode selects one WITH-chained query or per-gate materialized
	// tables (inspectable intermediate states).
	Mode core.Mode
	// Fusion is the gate-fusion query optimization level (§3.2).
	Fusion core.FusionLevel
	// Encoding picks bitwise (paper) or arithmetic (ablation) index
	// math.
	Encoding core.Encoding
	// PruneEps adds HAVING-based amplitude pruning; zero uses the
	// shared default, negative disables pruning entirely.
	PruneEps float64
	// MemoryBudget caps the engine's in-memory bytes. With spilling on
	// (default) the run proceeds out-of-core; with DisableSpill it
	// fails with ErrMemoryBudget like the in-memory backends.
	MemoryBudget int64
	SpillDir     string
	DisableSpill bool
	// Parallelism is the engine's morsel-parallel worker count; zero
	// derives it from GOMAXPROCS, 1 pins execution to a single worker.
	// The simulated amplitudes are bitwise independent of the setting.
	Parallelism int
	// Layout selects the engine's table storage format: "" or
	// "columnar" for the typed column-vector store, "row" for the
	// legacy row-major store. Amplitudes are bitwise independent of the
	// layout (asserted by differential tests and the benchmark report).
	Layout string
	// Optimizer controls the engine's cost-based query optimizer: "" or
	// "on" (default) enables it, "off" uses the legacy direct planner.
	// Amplitudes are bitwise independent of the setting: the optimizer
	// restricts order-sensitive rewrites to plans without float
	// accumulation (see internal/sqlengine/optimize.go).
	Optimizer string
	// Kernels controls the engine's compiled gate-stage kernel tier: ""
	// or "on" (default) lowers matching gate-stage plans to a fused
	// typed loop, "off" always runs the interpreted batch executor.
	// Amplitudes are bitwise independent of the setting — the kernel
	// replays the interpreted engine's accumulation order exactly (see
	// internal/sqlengine/kernel.go).
	Kernels string
	// ChainFusion controls whole-circuit fusion: "" or "on" (default)
	// collapses every run of two or more consecutive gate-stage CTAS
	// statements into one WITH-chained CTAS
	// (core.Translation.FusedStatements) and enables the engine's
	// multi-stage fused kernel execution, which double-buffers the
	// interior stage amplitudes in memory instead of materializing
	// them; "off" keeps stage-at-a-time statements and execution.
	// Amplitudes are bitwise independent of the setting (see
	// internal/sqlengine/kernel_chain.go). Distinct from Fusion, which
	// is the translation-level gate-matrix fusion of §3.2.
	ChainFusion string
	// Encodings controls the engine's sparsity-first storage tier: ""
	// or "on" (default) enables compressed column encodings and
	// zone-map skip-scan, "off" keeps plain typed vectors. Amplitudes
	// are bitwise independent of the setting — encodings are exact and
	// a skipped morsel is one the pushed filter would have emptied
	// anyway (see internal/sqlengine/encoding.go and zonemap.go).
	Encodings string
	// Budget, when non-nil, is a pre-built engine memory accountant
	// that overrides MemoryBudget. Sharing one budget across backends
	// makes concurrent simulations compete for a single global pool —
	// the simulation service's admission-control mechanism. With a
	// shared budget, Stats.PeakBytes reports the POOL's high-water
	// mark (across all jobs that ever used it), not this run's own
	// peak — per-run attribution is not possible when reservations
	// interleave.
	Budget *sqlengine.MemBudget
	// Cache, when non-nil, caches circuit→SQL translations across Run
	// calls: exact repeats reuse the whole plan, parameter-sweep
	// variants reuse the SQL text and rebind only the numeric gate
	// data. Safe for concurrent use and shareable across backends.
	Cache *PlanCache
	// Tracing controls the engine's per-operator span instrumentation
	// ("" or "on" enables it for contexts carrying an obs span, "off"
	// disables it; see sqlengine.Config.Tracing). Amplitudes are
	// bitwise independent of the setting.
	Tracing string
	// Initial overrides the |0...0⟩ initial state.
	Initial *quantum.State
}

// Name implements Backend.
func (b *SQL) Name() string {
	if b.Mode == core.MaterializedChain {
		return "sql-chain"
	}
	return "sql"
}

// Run implements Backend.
func (b *SQL) Run(c *quantum.Circuit) (*Result, error) {
	return b.RunContext(context.Background(), c)
}

// translate produces the circuit's SQL program, consulting the plan
// cache when one is configured. The tier reports how the program was
// produced ("translated" without a cache, else the cache tier).
func (b *SQL) translate(c *quantum.Circuit, opts core.Options) (*core.Translation, string, error) {
	if b.Cache != nil {
		return b.Cache.TranslationTier(c, b.Initial, opts)
	}
	tr, err := core.Translate(c, b.Initial, opts)
	return tr, "translated", err
}

// RunContext implements Backend. Cancellation reaches into the engine:
// an in-flight gate-stage query aborts at the next batch/morsel
// boundary, releasing all budget reservations and worker goroutines.
func (b *SQL) RunContext(ctx context.Context, c *quantum.Circuit) (*Result, error) {
	start := time.Now()
	eps := b.PruneEps
	if eps == 0 {
		eps = pruneEpsDefault
	}
	if eps < 0 {
		eps = 0
	}
	// sp is nil for untraced runs; every span call below no-ops then.
	sp := obs.SpanFromContext(ctx)
	tsp := sp.Child("translate")
	tr, tier, err := b.translate(c, core.Options{
		Mode:     b.Mode,
		Fusion:   b.Fusion,
		Encoding: b.Encoding,
		PruneEps: eps,
	})
	if err != nil {
		return nil, err
	}
	tsp.Add("plan_"+tier, 1)
	tsp.Add("stages", int64(tr.StageCount))
	tsp.End()

	cfg := sqlengine.Config{
		MemoryBudget: b.MemoryBudget,
		SpillDir:     b.SpillDir,
		DisableSpill: b.DisableSpill,
		Parallelism:  b.Parallelism,
		Layout:       b.Layout,
		Budget:       b.Budget,
		Optimizer:    b.Optimizer,
		Kernels:      b.Kernels,
		Fusion:       b.ChainFusion,
		Encodings:    b.Encodings,
		Tracing:      b.Tracing,
	}
	if b.Cache != nil {
		// Compiled kernels ride along with the plan cache: a sweep that
		// reuses the SQL text also reuses the lowered kernel program.
		cfg.KernelCache = b.Cache.Kernels()
	}
	db, err := sqlengine.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	var maxRows int64
	stmts := tr.Statements()
	if b.ChainFusion != "off" {
		stmts = tr.FusedStatements()
	}
	ssp := sp.Child("stages")
	ssp.Add("statements", int64(len(stmts)))
	stageCtx := obs.WithSpan(ctx, ssp)
	for _, stmt := range stmts {
		n, err := db.ExecContext(stageCtx, stmt)
		if err != nil {
			return nil, wrapBudget(fmt.Errorf("sql backend: %w", err))
		}
		if n > maxRows {
			maxRows = n
		}
	}
	ssp.End()
	qsp := sp.Child("query")
	rs, err := db.QueryContext(obs.WithSpan(ctx, qsp), tr.Query)
	qsp.End()
	if err != nil {
		return nil, wrapBudget(fmt.Errorf("sql backend: %w", err))
	}
	defer rs.Close()

	esp := sp.Child("emit")
	state := quantum.NewState(c.NumQubits())
	for {
		row, ok, err := rs.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		s, err := row[0].AsInt()
		if err != nil {
			return nil, fmt.Errorf("sql backend: bad state index %v: %w", row[0], err)
		}
		r, err := row[1].AsFloat()
		if err != nil {
			return nil, fmt.Errorf("sql backend: bad real part %v: %w", row[1], err)
		}
		im, err := row[2].AsFloat()
		if err != nil {
			return nil, fmt.Errorf("sql backend: bad imaginary part %v: %w", row[2], err)
		}
		state.Set(uint64(s), complex(r, im))
	}
	esp.Add("amplitudes", int64(state.Len()))
	esp.End()
	if rows := rs.Len(); rows > maxRows {
		maxRows = rows
	}

	st := db.Stats()
	return &Result{
		State: state,
		Stats: Stats{
			Backend:             b.Name(),
			WallTime:            time.Since(start),
			GateCount:           c.Len(),
			PeakBytes:           st.PeakBytes,
			FinalNonzeros:       state.Len(),
			MaxIntermediateSize: maxRows,
			SpilledRows:         st.SpilledRows,
			Extra:               fmt.Sprintf("stages=%d fusion=%s chainfusion=%s encoding=%s", tr.StageCount, b.Fusion, chainFusionName(b.ChainFusion), b.Encoding),
		},
	}, nil
}

func chainFusionName(v string) string {
	if v == "off" {
		return "off"
	}
	return "on"
}

// wrapBudget maps the engine's budget error onto the shared sentinel so
// the harness treats all backends uniformly.
func wrapBudget(err error) error {
	if err == nil {
		return nil
	}
	if containsBudgetErr(err) {
		return fmt.Errorf("%v: %w", err, ErrMemoryBudget)
	}
	return err
}

func containsBudgetErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "memory budget exceeded")
}
