package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
	"qymera/internal/sqlengine"
)

// TestSQLKernelBitIdenticalAmplitudes asserts the kernel tier's
// correctness invariant at the simulation level: the SQL backend
// produces bitwise-identical amplitudes with kernels on and off, on
// both storage layouts, at one and at four workers, with the optimizer
// on and off, in both translation modes. The fused loop replays the
// interpreted engine's accumulation and emission order exactly (see
// internal/sqlengine/kernel.go), so only throughput changes.
func TestSQLKernelBitIdenticalAmplitudes(t *testing.T) {
	workloads := []struct {
		name string
		c    *quantum.Circuit
		mode core.Mode
	}{
		{"ghz", circuits.GHZ(12), core.SingleQuery},
		{"qft", circuits.QFT(7), core.SingleQuery},
		// 2^15 nonzero amplitudes: spans several morsels, so the
		// parallel runs exercise the kernel's two-phase morsel path.
		{"parity", circuits.ParitySuperposition(15), core.SingleQuery},
		{"qft-chain", circuits.QFT(6), core.MaterializedChain},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			var ref *quantum.State
			for _, kernels := range []string{"on", "off"} {
				for _, layout := range []string{"columnar", "row"} {
					for _, workers := range []int{1, 4} {
						for _, optimizer := range []string{"on", "off"} {
							b := &SQL{Mode: wl.mode, Kernels: kernels, Optimizer: optimizer, Layout: layout, Parallelism: workers}
							res, err := b.Run(wl.c)
							if err != nil {
								t.Fatalf("kernels=%s layout=%s workers=%d optimizer=%s: %v", kernels, layout, workers, optimizer, err)
							}
							if ref == nil {
								ref = res.State
								continue
							}
							if err := statesBitIdentical(ref, res.State); err != nil {
								t.Fatalf("kernels=%s layout=%s workers=%d optimizer=%s: %v", kernels, layout, workers, optimizer, err)
							}
						}
					}
				}
			}
		})
	}
}

// TestSQLKernelCacheRidesPlanCache: backends sharing a PlanCache also
// share compiled kernels, so a parameter sweep lowers each gate-stage
// shape once and reuses it for every subsequent point.
func TestSQLKernelCacheRidesPlanCache(t *testing.T) {
	cache := NewPlanCache(8)
	b := &SQL{Cache: cache, Parallelism: 1}
	sqlengine.ResetKernelCounters()
	for point := 0; point < 4; point++ {
		params := make([]float64, 6*2)
		for i := range params {
			params[i] = 0.1 + 0.2*float64(point) + 0.01*float64(i)
		}
		if _, err := b.Run(circuits.HardwareEfficientAnsatz(3, 2, params)); err != nil {
			t.Fatal(err)
		}
	}
	kc := sqlengine.KernelCounters()
	if kc["executions"] == 0 {
		t.Fatal("kernel never executed during the sweep")
	}
	if kc["compiles"] == 0 || kc["cache_hits"] == 0 {
		t.Fatalf("kernel cache not exercised: %v", kc)
	}
	// Later sweep points must not recompile: every shape is lowered at
	// most once across the whole sweep (compiles <= shapes of point 0).
	if kc["compiles"]*3 > kc["executions"] {
		t.Fatalf("too many compiles (%d) for %d executions — cache not shared across points", kc["compiles"], kc["executions"])
	}
	if cache.Kernels().Len() == 0 {
		t.Fatal("shared kernel cache is empty")
	}
}
