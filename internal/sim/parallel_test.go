package sim

import (
	"fmt"
	"math"
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
)

// TestSQLParallelismBitIdenticalAmplitudes asserts the engine's core
// determinism guarantee at the simulation level: the SQL backend
// produces bitwise-identical amplitudes for every Parallelism setting,
// because morsel boundaries and aggregation merge order depend only on
// the data.
func TestSQLParallelismBitIdenticalAmplitudes(t *testing.T) {
	workloads := []struct {
		name string
		c    *quantum.Circuit
	}{
		{"ghz", circuits.GHZ(12)},
		{"qft", circuits.QFT(7)},
		// 2^15 nonzero amplitudes: the state table spans several
		// morsels, so gate stages really run the parallel join+aggregate.
		{"parity", circuits.ParitySuperposition(15)},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			var ref *quantum.State
			for _, workers := range []int{1, 4} {
				res, err := (&SQL{Parallelism: workers}).Run(wl.c)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if ref == nil {
					ref = res.State
					continue
				}
				if err := statesBitIdentical(ref, res.State); err != nil {
					t.Fatalf("workers=1 vs %d: %v", workers, err)
				}
			}
		})
	}
}

// statesBitIdentical compares two sparse states exactly, down to the
// IEEE-754 bit patterns of each amplitude component.
func statesBitIdentical(a, b *quantum.State) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("nonzero counts differ: %d vs %d", a.Len(), b.Len())
	}
	for _, idx := range a.Indices() {
		aa, ba := a.Amplitude(idx), b.Amplitude(idx)
		if math.Float64bits(real(aa)) != math.Float64bits(real(ba)) ||
			math.Float64bits(imag(aa)) != math.Float64bits(imag(ba)) {
			return fmt.Errorf("amplitude at |%d⟩ differs: %v vs %v", idx, aa, ba)
		}
	}
	return nil
}

// TestSQLParallelismMatchesStateVector guards correctness of the
// parallel executor against the dense reference backend.
func TestSQLParallelismMatchesStateVector(t *testing.T) {
	c := circuits.QFT(6)
	ref, err := (&StateVector{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&SQL{Parallelism: 4}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.State.EqualApprox(res.State, 1e-9) {
		t.Fatalf("parallel SQL backend diverges from state vector")
	}
}
