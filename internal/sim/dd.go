package sim

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"qymera/internal/quantum"
)

// DD is a decision-diagram simulator in the style of QMDD/DDSIM (the
// paper's "MQT DD" backend): quantum states are stored as reduced
// ordered decision diagrams with complex edge weights and a unique
// table, so structured states (GHZ, basis states, stabilizer-like
// states) take O(n) nodes regardless of 2^n.
//
// Gates are lowered to single-qubit matrices and multi-controlled
// single-qubit primitives whose controls sit above the target in the
// variable order, which covers the whole registered gate set.
type DD struct {
	// MemoryBudget, when positive, caps estimated node memory
	// (ddNodeBytes per live unique node).
	MemoryBudget int64
	// Initial overrides the |0...0⟩ initial state.
	Initial *quantum.State
}

// Name implements Backend.
func (d *DD) Name() string { return "dd" }

const (
	ddNodeBytes = 96
	// ddEps quantizes edge weights for unique-table hashing and
	// treats smaller magnitudes as zero.
	ddEps = 1e-12
)

// ddNode is one decision node. level counts remaining qubits: the node
// branches on qubit level-1; level 1 nodes point to the terminal.
type ddNode struct {
	level  int
	w0, w1 complex128
	c0, c1 *ddNode // nil for terminal children (level 1) or zero edges
	id     uint64
}

// ddEdge is a weighted pointer to a (sub-)diagram.
type ddEdge struct {
	w complex128
	n *ddNode // nil means the terminal
}

func (e ddEdge) isZero() bool { return e.w == 0 }

// ddCtx holds the unique table and operation caches for one run.
type ddCtx struct {
	unique map[string]*ddNode
	addCh  map[[2]uint64]ddEdge
	nextID uint64
	// terminalEdge is reused for weight-1 terminal references.
	peakNodes int
}

func newDDCtx() *ddCtx {
	return &ddCtx{unique: map[string]*ddNode{}, addCh: map[[2]uint64]ddEdge{}}
}

// quantize rounds a weight for hashing so numerically equal diagrams
// share nodes.
func quantize(w complex128) (int64, int64) {
	const scale = 1e10
	return int64(math.Round(real(w) * scale)), int64(math.Round(imag(w) * scale))
}

// makeNode normalizes and deduplicates a node with child edges e0, e1
// (children of level-1 diagrams). It returns the normalized edge.
func (ctx *ddCtx) makeNode(level int, e0, e1 ddEdge) ddEdge {
	if cmplx.Abs(e0.w) < ddEps {
		e0 = ddEdge{}
	}
	if cmplx.Abs(e1.w) < ddEps {
		e1 = ddEdge{}
	}
	if e0.isZero() && e1.isZero() {
		return ddEdge{}
	}
	// Normalize: pull out the larger-magnitude weight.
	norm := e0.w
	if cmplx.Abs(e1.w) > cmplx.Abs(e0.w) {
		norm = e1.w
	}
	w0 := complexDiv(e0.w, norm)
	w1 := complexDiv(e1.w, norm)

	r0, i0 := quantize(w0)
	r1, i1 := quantize(w1)
	var id0, id1 uint64
	if e0.n != nil {
		id0 = e0.n.id
	}
	if e1.n != nil {
		id1 = e1.n.id
	}
	key := fmt.Sprintf("%d|%d:%d,%d|%d:%d,%d", level, id0, r0, i0, id1, r1, i1)
	if n, ok := ctx.unique[key]; ok {
		return ddEdge{w: norm, n: n}
	}
	ctx.nextID++
	n := &ddNode{level: level, w0: w0, w1: w1, c0: e0.n, c1: e1.n, id: ctx.nextID}
	ctx.unique[key] = n
	if len(ctx.unique) > ctx.peakNodes {
		ctx.peakNodes = len(ctx.unique)
	}
	return ddEdge{w: norm, n: n}
}

func complexDiv(a, b complex128) complex128 {
	if b == 0 {
		return 0
	}
	return a / b
}

// child returns the i-th outgoing edge of e's node with the parent
// weight folded in.
func child(e ddEdge, i int) ddEdge {
	if e.n == nil {
		return ddEdge{}
	}
	if i == 0 {
		return ddEdge{w: e.w * e.n.w0, n: e.n.c0}
	}
	return ddEdge{w: e.w * e.n.w1, n: e.n.c1}
}

// add computes the pointwise sum of two diagrams of equal level.
func (ctx *ddCtx) add(a, b ddEdge, level int) ddEdge {
	if a.isZero() {
		return b
	}
	if b.isZero() {
		return a
	}
	if level == 0 {
		return ddEdge{w: a.w + b.w}
	}
	var ka, kb uint64
	if a.n != nil {
		ka = a.n.id
	}
	if b.n != nil {
		kb = b.n.id
	}
	// The cache is keyed on node ids only, so it is valid only for
	// weight-1 lookups; normalize the pair by a's weight.
	ratioKeyed := ka != 0 && kb != 0 && a.w == 1 && b.w == 1
	if ratioKeyed {
		if r, ok := ctx.addCh[[2]uint64{ka, kb}]; ok {
			return r
		}
	}
	r0 := ctx.add(child(a, 0), child(b, 0), level-1)
	r1 := ctx.add(child(a, 1), child(b, 1), level-1)
	res := ctx.makeNode(level, r0, r1)
	if ratioKeyed {
		ctx.addCh[[2]uint64{ka, kb}] = res
	}
	return res
}

// ddPrimitive is a 1-qubit matrix application with zero or more control
// qubits, all strictly above the target in the variable order.
type ddPrimitive struct {
	controls []int // descending, all > target
	target   int
	m        [4]complex128 // row-major [m00, m01, m10, m11]
}

// applyPrimitive applies the primitive to the whole diagram.
func (ctx *ddCtx) applyPrimitive(e ddEdge, level int, p ddPrimitive, ctrlIdx int) ddEdge {
	if e.isZero() {
		return e
	}
	q := level - 1
	if q == p.target && ctrlIdx == len(p.controls) {
		c0 := child(e, 0)
		c1 := child(e, 1)
		n0 := ctx.add(scaleEdge(c0, p.m[0]), scaleEdge(c1, p.m[1]), level-1)
		n1 := ctx.add(scaleEdge(c0, p.m[2]), scaleEdge(c1, p.m[3]), level-1)
		return ctx.makeNode(level, n0, n1)
	}
	if level == 0 {
		return e
	}
	var r0, r1 ddEdge
	if ctrlIdx < len(p.controls) && q == p.controls[ctrlIdx] {
		r0 = child(e, 0) // control clear: identity below
		r1 = ctx.applyPrimitive(child(e, 1), level-1, p, ctrlIdx+1)
	} else {
		r0 = ctx.applyPrimitive(child(e, 0), level-1, p, ctrlIdx)
		r1 = ctx.applyPrimitive(child(e, 1), level-1, p, ctrlIdx)
	}
	return ctx.makeNode(level, r0, r1)
}

func scaleEdge(e ddEdge, f complex128) ddEdge {
	if f == 0 || e.isZero() {
		return ddEdge{}
	}
	return ddEdge{w: e.w * f, n: e.n}
}

// Run implements Backend.
func (d *DD) Run(c *quantum.Circuit) (*Result, error) {
	return d.RunContext(context.Background(), c)
}

// RunContext implements Backend; cancellation is checked between gates.
func (d *DD) RunContext(runCtx context.Context, c *quantum.Circuit) (*Result, error) {
	start := time.Now()
	n := c.NumQubits()
	ctx := newDDCtx()

	root, err := ddFromState(ctx, n, d.Initial)
	if err != nil {
		return nil, err
	}

	var peakReachable int
	for gi, g := range c.Gates() {
		if err := ctxErr(d.Name(), runCtx); err != nil {
			return nil, err
		}
		prims, err := lowerGate(g)
		if err != nil {
			return nil, err
		}
		for _, p := range prims {
			// Gate application invalidates the add cache scope anyway;
			// keep it bounded.
			if len(ctx.addCh) > 1<<16 {
				ctx.addCh = map[[2]uint64]ddEdge{}
			}
			root = ctx.applyPrimitive(root, n, p, 0)
		}
		// The diagram's true size is the reachable node count; the
		// unique table also holds garbage from intermediate results,
		// so collect it when it outgrows the live diagram.
		reachable := countReachable(root)
		if reachable > peakReachable {
			peakReachable = reachable
		}
		if len(ctx.unique) > 4*reachable+4096 {
			ctx.collect(root)
		}
		if d.MemoryBudget > 0 && int64(reachable)*ddNodeBytes > d.MemoryBudget {
			return nil, fmt.Errorf("dd: %d live nodes after gate %d exceed budget %d: %w",
				reachable, gi, d.MemoryBudget, ErrMemoryBudget)
		}
	}

	state := quantum.NewState(n)
	extractAmplitudes(root, n, 0, 1, state)
	state.Prune(pruneEpsDefault)

	if peakReachable == 0 { // gate-free circuit
		peakReachable = countReachable(root)
	}
	return &Result{
		State: state,
		Stats: Stats{
			Backend:             d.Name(),
			WallTime:            time.Since(start),
			GateCount:           c.Len(),
			PeakBytes:           int64(peakReachable) * ddNodeBytes,
			FinalNonzeros:       state.Len(),
			MaxIntermediateSize: int64(peakReachable),
			Extra:               fmt.Sprintf("liveNodes=%d tableNodes=%d", countReachable(root), len(ctx.unique)),
		},
	}, nil
}

// countReachable returns the number of distinct nodes in the diagram.
func countReachable(e ddEdge) int {
	seen := map[*ddNode]bool{}
	var walk func(n *ddNode)
	walk = func(n *ddNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		walk(n.c0)
		walk(n.c1)
	}
	walk(e.n)
	return len(seen)
}

// collect drops unique-table entries not reachable from root and clears
// the operation caches (they may reference dead nodes).
func (ctx *ddCtx) collect(root ddEdge) {
	live := map[*ddNode]bool{}
	var walk func(n *ddNode)
	walk = func(n *ddNode) {
		if n == nil || live[n] {
			return
		}
		live[n] = true
		walk(n.c0)
		walk(n.c1)
	}
	walk(root.n)
	for k, n := range ctx.unique {
		if !live[n] {
			delete(ctx.unique, k)
		}
	}
	ctx.addCh = map[[2]uint64]ddEdge{}
}

// ddFromState builds the initial diagram. A nil state is |0...0⟩.
func ddFromState(ctx *ddCtx, n int, st *quantum.State) (ddEdge, error) {
	if st == nil {
		e := ddEdge{w: 1}
		for lvl := 1; lvl <= n; lvl++ {
			e = ctx.makeNode(lvl, e, ddEdge{})
		}
		return e, nil
	}
	if st.NumQubits() != n {
		return ddEdge{}, fmt.Errorf("dd: initial state width %d != circuit width %d", st.NumQubits(), n)
	}
	total := ddEdge{}
	for _, idx := range st.Indices() {
		amp := st.Amplitude(idx)
		e := ddEdge{w: amp}
		for lvl := 1; lvl <= n; lvl++ {
			if idx>>uint(lvl-1)&1 == 0 {
				e = ctx.makeNode(lvl, e, ddEdge{})
			} else {
				e = ctx.makeNode(lvl, ddEdge{}, e)
			}
		}
		total = ctx.add(total, e, n)
	}
	return total, nil
}

// extractAmplitudes walks all nonzero paths (qubit level-1 per node).
func extractAmplitudes(e ddEdge, level int, prefix uint64, acc complex128, out *quantum.State) {
	if e.isZero() {
		return
	}
	w := acc * e.w
	if cmplx.Abs(w) < ddEps {
		return
	}
	if level == 0 {
		out.Add(prefix, w)
		return
	}
	n := e.n
	extractAmplitudes(ddEdge{w: n.w0, n: n.c0}, level-1, prefix, w, out)
	extractAmplitudes(ddEdge{w: n.w1, n: n.c1}, level-1, prefix|uint64(1)<<uint(level-1), w, out)
}

// lowerGate rewrites a registry gate into controlled-1q primitives whose
// controls are above the target. Diagonal multi-controlled phases are
// symmetric in their qubits, which the lowering exploits.
func lowerGate(g quantum.Gate) ([]ddPrimitive, error) {
	m1 := func(name string, params ...float64) [4]complex128 {
		m := quantum.Gate{Name: name, Qubits: []int{0}, Params: params}.MustMatrix()
		return [4]complex128{m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1)}
	}
	single := func(target int, m [4]complex128) ddPrimitive {
		return ddPrimitive{target: target, m: m}
	}
	// ctrl builds a primitive after sorting controls descending; it
	// requires every control above the target.
	ctrl := func(controls []int, target int, m [4]complex128) ddPrimitive {
		cs := append([]int{}, controls...)
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if cs[j] > cs[i] {
					cs[i], cs[j] = cs[j], cs[i]
				}
			}
		}
		return ddPrimitive{controls: cs, target: target, m: m}
	}
	// symmetric diagonal: use the minimum qubit as target.
	symDiag := func(qubits []int, m [4]complex128) ddPrimitive {
		min := qubits[0]
		for _, q := range qubits {
			if q < min {
				min = q
			}
		}
		var cs []int
		for _, q := range qubits {
			if q != min {
				cs = append(cs, q)
			}
		}
		return ctrl(cs, min, m)
	}
	mH := m1("H")
	mS := m1("S")
	mSdg := m1("SDG")
	mX := m1("X")
	mZ := m1("Z")

	// cxSeq emits CX(control, target) for arbitrary order.
	cxSeq := func(c0, t int) []ddPrimitive {
		if c0 > t {
			return []ddPrimitive{ctrl([]int{c0}, t, mX)}
		}
		// H(t) CZ H(t) with CZ symmetric.
		return []ddPrimitive{single(t, mH), symDiag([]int{c0, t}, mZ), single(t, mH)}
	}

	q := g.Qubits
	switch g.Name {
	case "I":
		return nil, nil
	case "H", "X", "Y", "Z", "S", "SDG", "T", "TDG", "SX", "SXDG":
		return []ddPrimitive{single(q[0], m1(g.Name))}, nil
	case "RX", "RY", "RZ", "P":
		return []ddPrimitive{single(q[0], m1(g.Name, g.Params...))}, nil
	case "U":
		return []ddPrimitive{single(q[0], m1("U", g.Params...))}, nil

	case "CX":
		return cxSeq(q[0], q[1]), nil
	case "CZ":
		return []ddPrimitive{symDiag(q, mZ)}, nil
	case "CS":
		return []ddPrimitive{symDiag(q, mS)}, nil
	case "CSDG":
		return []ddPrimitive{symDiag(q, mSdg)}, nil
	case "CP":
		return []ddPrimitive{symDiag(q, m1("P", g.Params[0]))}, nil
	case "CY":
		// CY = S(t) · CX · S†(t)
		out := []ddPrimitive{single(q[1], mSdg)}
		out = append(out, cxSeq(q[0], q[1])...)
		out = append(out, single(q[1], mS))
		return out, nil
	case "CH":
		// H = RY(π/4)·Z·RY(−π/4): conjugate a symmetric CZ.
		ryp := m1("RY", math.Pi/4)
		rym := m1("RY", -math.Pi/4)
		return []ddPrimitive{
			single(q[1], rym),
			symDiag(q, mZ),
			single(q[1], ryp),
		}, nil
	case "CRZ":
		// CRZ(c,t,λ) = P(c,−λ/2) · CP(c,t,λ), all diagonal.
		return []ddPrimitive{
			single(q[0], m1("P", -g.Params[0]/2)),
			symDiag(q, m1("P", g.Params[0])),
		}, nil
	case "CRX":
		// RX = H·RZ·H
		out := []ddPrimitive{single(q[1], mH)}
		inner, err := lowerGate(quantum.Gate{Name: "CRZ", Qubits: q, Params: g.Params})
		if err != nil {
			return nil, err
		}
		out = append(out, inner...)
		out = append(out, single(q[1], mH))
		return out, nil
	case "CRY":
		// RY = S·RX·S†
		out := []ddPrimitive{single(q[1], mSdg)}
		inner, err := lowerGate(quantum.Gate{Name: "CRX", Qubits: q, Params: g.Params})
		if err != nil {
			return nil, err
		}
		out = append(out, inner...)
		out = append(out, single(q[1], mS))
		return out, nil
	case "SWAP":
		var out []ddPrimitive
		out = append(out, cxSeq(q[0], q[1])...)
		out = append(out, cxSeq(q[1], q[0])...)
		out = append(out, cxSeq(q[0], q[1])...)
		return out, nil
	case "ISWAP":
		// ISWAP = (S⊗S)·CZ·SWAP.
		var out []ddPrimitive
		out = append(out, cxSeq(q[0], q[1])...)
		out = append(out, cxSeq(q[1], q[0])...)
		out = append(out, cxSeq(q[0], q[1])...)
		out = append(out, symDiag(q, mZ), single(q[0], mS), single(q[1], mS))
		return out, nil
	case "ISWAPDG":
		// ISWAP† = SWAP·CZ·(S†⊗S†): diagonals first, then the SWAP.
		out := []ddPrimitive{single(q[0], mSdg), single(q[1], mSdg), symDiag(q, mZ)}
		out = append(out, cxSeq(q[0], q[1])...)
		out = append(out, cxSeq(q[1], q[0])...)
		out = append(out, cxSeq(q[0], q[1])...)
		return out, nil
	case "CCZ":
		return []ddPrimitive{symDiag(q, mZ)}, nil
	case "CCX":
		t := q[2]
		return []ddPrimitive{
			single(t, mH),
			symDiag(q, mZ),
			single(t, mH),
		}, nil
	case "CSWAP":
		ctl, a, b := q[0], q[1], q[2]
		ccx := func(x, y int) []ddPrimitive {
			return []ddPrimitive{
				single(y, mH),
				symDiag([]int{ctl, x, y}, mZ),
				single(y, mH),
			}
		}
		var out []ddPrimitive
		out = append(out, ccx(a, b)...)
		out = append(out, ccx(b, a)...)
		out = append(out, ccx(a, b)...)
		return out, nil
	case "C3Z", "C4Z":
		return []ddPrimitive{symDiag(q, mZ)}, nil
	case "C3X", "C4X":
		t := q[len(q)-1]
		return []ddPrimitive{
			single(t, mH),
			symDiag(q, mZ),
			single(t, mH),
		}, nil
	}
	return nil, fmt.Errorf("dd: gate %s is not supported by the decision-diagram backend", g.Name)
}
