package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
)

// TestSQLStorageLayoutBitIdenticalAmplitudes asserts the storage
// refactor's correctness invariant at the simulation level: the SQL
// backend produces bitwise-identical amplitudes on the columnar table
// store and the legacy row store, at one and at four workers, in both
// translation modes. The column store round-trips every value exactly
// (types, int64 state indices, float64 amplitude bits), so switching
// the physical layout must never change a simulation result.
func TestSQLStorageLayoutBitIdenticalAmplitudes(t *testing.T) {
	workloads := []struct {
		name string
		c    *quantum.Circuit
	}{
		{"ghz", circuits.GHZ(12)},
		{"qft", circuits.QFT(7)},
		// 2^15 nonzero amplitudes: spans several morsels, so the
		// parallel runs exercise morselized columnar scans.
		{"parity", circuits.ParitySuperposition(15)},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			var ref *quantum.State
			for _, layout := range []string{"columnar", "row"} {
				for _, workers := range []int{1, 4} {
					res, err := (&SQL{Layout: layout, Parallelism: workers}).Run(wl.c)
					if err != nil {
						t.Fatalf("layout=%s workers=%d: %v", layout, workers, err)
					}
					if ref == nil {
						ref = res.State
						continue
					}
					if err := statesBitIdentical(ref, res.State); err != nil {
						t.Fatalf("layout=%s workers=%d: %v", layout, workers, err)
					}
				}
			}
		})
	}

	// The materialized per-gate chain exercises CTAS adoption and
	// re-scans of stored tables; keep it bit-identical across layouts
	// too (one circuit keeps the test fast).
	var ref *quantum.State
	for _, layout := range []string{"columnar", "row"} {
		res, err := (&SQL{Layout: layout, Mode: core.MaterializedChain, Parallelism: 2}).Run(circuits.QFT(6))
		if err != nil {
			t.Fatalf("chain layout=%s: %v", layout, err)
		}
		if ref == nil {
			ref = res.State
			continue
		}
		if err := statesBitIdentical(ref, res.State); err != nil {
			t.Fatalf("chain: %v", err)
		}
	}
}
