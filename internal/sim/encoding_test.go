package sim

import (
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
)

// TestSQLEncodingsBitIdenticalAmplitudes asserts the sparsity-first
// storage tier's correctness invariant at the simulation level: the SQL
// backend produces bitwise-identical amplitudes with encodings on and
// off, with the kernel tier on and off, at one and at four workers, in
// both translation modes. Encodings are exact and a zone-skipped morsel
// is one the pushed filter would have emptied anyway (see
// internal/sqlengine/encoding.go and zonemap.go), so only the storage
// footprint and throughput change.
func TestSQLEncodingsBitIdenticalAmplitudes(t *testing.T) {
	workloads := []struct {
		name string
		c    *quantum.Circuit
		mode core.Mode
	}{
		// GHZ keeps 2 nonzeros in a 2^12 space: the sparse regime where
		// amplitude columns sparse-encode and norm-prune zones skip.
		{"ghz", circuits.GHZ(12), core.SingleQuery},
		{"qft", circuits.QFT(7), core.SingleQuery},
		// 2^15 nonzero amplitudes: spans several morsels, so parallel
		// runs exercise the claim-loop zone skip and encoded kernels.
		{"parity", circuits.ParitySuperposition(15), core.SingleQuery},
		// Per-gate CTAS materialization: every intermediate state table
		// freezes (and encodes) before the next stage scans it.
		{"ghz-chain", circuits.GHZ(10), core.MaterializedChain},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			var ref *quantum.State
			for _, encodings := range []string{"on", "off"} {
				for _, kernels := range []string{"on", "off"} {
					for _, workers := range []int{1, 4} {
						b := &SQL{Mode: wl.mode, Encodings: encodings, Kernels: kernels, Parallelism: workers}
						res, err := b.Run(wl.c)
						if err != nil {
							t.Fatalf("encodings=%s kernels=%s workers=%d: %v", encodings, kernels, workers, err)
						}
						if ref == nil {
							ref = res.State
							continue
						}
						if err := statesBitIdentical(ref, res.State); err != nil {
							t.Fatalf("encodings=%s kernels=%s workers=%d: %v", encodings, kernels, workers, err)
						}
					}
				}
			}
		})
	}
}

// TestSQLEncodingsBitIdenticalUnderBudget pins the invariant on the
// out-of-core path: with a budget that forces state tables through QYC2
// spill chunks, encodings on and off still agree bit-for-bit.
func TestSQLEncodingsBitIdenticalUnderBudget(t *testing.T) {
	c := circuits.ParitySuperposition(13)
	var ref *quantum.State
	for _, encodings := range []string{"on", "off"} {
		b := &SQL{
			Mode:         core.MaterializedChain,
			Encodings:    encodings,
			MemoryBudget: 256 << 10,
			SpillDir:     t.TempDir(),
			Parallelism:  1,
		}
		res, err := b.Run(c)
		if err != nil {
			t.Fatalf("encodings=%s: %v", encodings, err)
		}
		if res.Stats.SpilledRows == 0 {
			t.Fatalf("encodings=%s: run never spilled — budget too generous for the workload", encodings)
		}
		if ref == nil {
			ref = res.State
			continue
		}
		if err := statesBitIdentical(ref, res.State); err != nil {
			t.Fatalf("encodings=%s: %v", encodings, err)
		}
	}
}
