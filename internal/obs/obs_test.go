package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil {
		t.Fatal("nil trace root should be nil")
	}
	if tr.SampleEvery() != 0 {
		t.Fatal("nil trace sample stride should be 0")
	}
	var sp *Span
	if sp.Child("x") != nil {
		t.Fatal("nil span child should be nil")
	}
	sp.End()
	sp.Add("rows", 1)
	sp.SetDuration(time.Second)
	if sp.Duration() != 0 {
		t.Fatal("nil span duration should be 0")
	}
	snap := tr.Snapshot()
	if snap.Name != "" || len(snap.Children) != 0 {
		t.Fatal("nil trace snapshot should be empty")
	}
	ctx := WithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span must not be stored on the context")
	}
	if SpanFromContext(nil) != nil {
		t.Fatal("nil context should yield nil span")
	}
}

func TestSpanTreeSnapshot(t *testing.T) {
	tr := NewTrace("job", 0)
	if tr.SampleEvery() != SampleDefault {
		t.Fatalf("default stride = %d, want %d", tr.SampleEvery(), SampleDefault)
	}
	run := tr.Root().Child("run")
	q := run.Child("query")
	q.Add("rows", 100)
	q.Add("rows", 28)
	q.End()
	run.End()
	tr.Root().End()

	snap := tr.Snapshot()
	if got, want := snap.Shape(), "job(run(query))"; got != want {
		t.Fatalf("shape = %q, want %q", got, want)
	}
	if snap.Unfinished {
		t.Fatal("ended root reported unfinished")
	}
	qs := snap.Children[0].Children[0]
	if qs.Counters["rows"] != 128 {
		t.Fatalf("rows counter = %d, want 128", qs.Counters["rows"])
	}
	if got := qs.CounterKeys(); len(got) != 1 || got[0] != "rows" {
		t.Fatalf("counter keys = %v", got)
	}
}

func TestCompleteChildAndSetDuration(t *testing.T) {
	tr := NewTrace("job", SampleFull)
	start := time.Now().Add(-time.Millisecond)
	tr.Root().CompleteChild("decode", start, 500*time.Microsecond)
	op := tr.Root().Child("op")
	op.SetDuration(2 * time.Millisecond)
	snap := tr.Snapshot()
	if n := len(snap.Children); n != 2 {
		t.Fatalf("children = %d, want 2", n)
	}
	if d := snap.Children[0].DurationUs; d != 500 {
		t.Fatalf("decode dur = %dus, want 500", d)
	}
	if d := snap.Children[1].DurationUs; d != 2000 {
		t.Fatalf("op dur = %dus, want 2000", d)
	}
}

// TestConcurrentTrace hammers one trace from many goroutines; run
// under -race this is the "traces survive concurrent collection"
// satellite check at the package level.
func TestConcurrentTrace(t *testing.T) {
	tr := NewTrace("job", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Root().Child("work")
				sp.Add("rows", 1)
				sp.End()
				_ = tr.Snapshot() // concurrent collection
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Children) != 8*200 {
		t.Fatalf("children = %d, want %d", len(snap.Children), 8*200)
	}
	var rows int64
	snap.Walk(func(sp SpanJSON) { rows += sp.Counters["rows"] })
	if rows != 8*200 {
		t.Fatalf("rows = %d, want %d", rows, 8*200)
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTrace("job", 0)
	ctx := WithSpan(context.Background(), tr.Root())
	if got := SpanFromContext(ctx); got != tr.Root() {
		t.Fatal("span did not round-trip through the context")
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	c := r.Counters()
	if c["a"] != 5 || c["b"] != 1 {
		t.Fatalf("counters = %v", c)
	}

	h := r.Histogram("lat")
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// p50 must sit in the ~1ms bucket, p99 in the ~100ms bucket; log₂
	// buckets are a factor-of-two estimate, so assert within 2x.
	if s.P50Seconds < 0.0005 || s.P50Seconds > 0.002 {
		t.Fatalf("p50 = %v, want ~1ms", s.P50Seconds)
	}
	if s.P99Seconds < 0.05 || s.P99Seconds > 0.2 {
		t.Fatalf("p99 = %v, want ~100ms", s.P99Seconds)
	}
	if s.P95Seconds < s.P50Seconds || s.P99Seconds < s.P95Seconds {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.MaxSeconds < 0.09 || s.MaxSeconds > 0.11 {
		t.Fatalf("max = %v, want ~0.1", s.MaxSeconds)
	}
	if s.AvgSeconds <= 0 {
		t.Fatalf("avg = %v", s.AvgSeconds)
	}
	if got := r.HistogramNames(); len(got) != 1 || got[0] != "lat" {
		t.Fatalf("histogram names = %v", got)
	}
	hs := r.Histograms()
	if hs["lat"].Count != 100 {
		t.Fatalf("snapshot count = %d", hs["lat"].Count)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99Seconds != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(-time.Second) // clamps to zero
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 2 || s.P50Seconds != 0 {
		t.Fatalf("zero-duration snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

// TestChromeTraceFields validates the export against the trace_event
// required fields (the satellite acceptance check).
func TestChromeTraceFields(t *testing.T) {
	tr := NewTrace("job", 0)
	run := tr.Root().Child("run")
	run.Add("rows", 42)
	run.End()
	tr.Root().End()

	data, err := ChromeTrace(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing required field %q: %v", field, ev)
			}
		}
		var ph string
		json.Unmarshal(ev["ph"], &ph)
		if ph != "X" {
			t.Fatalf("ph = %q, want X", ph)
		}
	}
}
