package obs

import "encoding/json"

// ChromeEvent is one Chrome trace_event record. Only "complete"
// events (ph "X") are emitted: name, ts (µs), dur (µs), pid, tid are
// the fields chrome://tracing and Perfetto require.
type ChromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`
	Dur  int64            `json:"dur"`
	Pid  int64            `json:"pid"`
	Tid  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeDoc is the trace_event JSON object form ({"traceEvents":[...]}),
// which both chrome://tracing and Perfetto load directly.
type chromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders a span-tree snapshot as Chrome trace_event
// JSON. Every span becomes a complete event on one track (pid/tid 1);
// nesting is reconstructed by the viewer from ts/dur containment.
func ChromeTrace(root SpanJSON) ([]byte, error) {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	root.Walk(func(sp SpanJSON) {
		ev := ChromeEvent{Name: sp.Name, Ph: "X", Ts: sp.StartUs, Dur: sp.DurationUs, Pid: 1, Tid: 1}
		if len(sp.Counters) > 0 {
			ev.Args = sp.Counters
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	})
	return json.MarshalIndent(doc, "", "  ")
}
