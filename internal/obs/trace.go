// Package obs is qymera's observability layer: span tracing for
// individual jobs and a unified registry of named counters and
// log-bucketed latency histograms (registry.go). It is deliberately
// dependency-free (stdlib only) so every other internal package can
// import it.
//
// The tracing side is built around two rules that keep it cheap enough
// to leave on in production:
//
//   - everything is nil-safe: a nil *Trace or nil *Span no-ops on every
//     method, so call sites never branch on "is tracing enabled" — the
//     disabled path costs one nil check per call;
//   - the span tree is structural, not temporal, on the hot path:
//     per-operator work is accumulated into atomic counters by the
//     executor (sampled on the morsel-parallel path) and attached to
//     spans once per statement, so tracing never serializes parallel
//     workers behind a shared lock.
//
// A Trace travels on a context.Context (WithSpan / SpanFromContext),
// riding the plumbing that already carries cancellation through the
// service → sim → sqlengine stack.
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Sampling rates for the two tracing modes. Full tracing times every
// batch; sampled tracing times one batch in SampleEvery, which keeps
// the traced parallel path within noise of the untraced one.
const (
	SampleFull    = 1
	SampleDefault = 8
)

// Trace is one job's span tree. All mutating methods are safe for
// concurrent use; the hot path is expected to mutate atomic counters
// owned by the executor and only attach them to spans at statement
// boundaries.
type Trace struct {
	mu          sync.Mutex
	root        *Span
	start       time.Time
	sampleEvery int
}

// NewTrace starts a trace rooted at a span with the given name.
// sampleEvery <= 0 uses SampleDefault; SampleFull (1) times every
// batch.
func NewTrace(name string, sampleEvery int) *Trace {
	if sampleEvery <= 0 {
		sampleEvery = SampleDefault
	}
	t := &Trace{start: timeNow(), sampleEvery: sampleEvery}
	t.root = &Span{tr: t, name: name, start: t.start}
	return t
}

// timeNow is stubbed in tests for deterministic durations.
var timeNow = time.Now

// Root returns the trace's root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SampleEvery reports the batch-sampling stride (0 for a nil trace).
func (t *Trace) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.sampleEvery
}

// SampleEvery reports the batch-sampling stride of the span's trace
// (0 for a nil span).
func (s *Span) SampleEvery() int {
	if s == nil {
		return 0
	}
	return s.tr.sampleEvery
}

// Span is one timed phase of a job. Spans form a tree under the
// trace's root; counters carry phase-specific totals (rows, bytes,
// cache hits, sampled nanoseconds, ...).
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time // zero while the span is open
	counters map[string]int64
	children []*Span
}

// Child opens a new child span. Nil-safe: a nil receiver returns nil,
// so an untraced call chain stays allocation-free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: timeNow()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// CompleteChild records an already-measured child span (used when the
// caller timed the work itself, e.g. HTTP decode before the trace
// existed).
func (s *Span) CompleteChild(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: start, end: start.Add(d)}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span. Ending an ended span keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = timeNow()
	}
	s.tr.mu.Unlock()
}

// Add accumulates a named counter on the span.
func (s *Span) Add(counter string, n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[counter] += n
	s.tr.mu.Unlock()
}

// SetDuration overrides the span's measured wall time (used for
// operator spans, whose "duration" is sampled iterator time rather
// than wall clock).
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.end = s.start.Add(d)
	s.tr.mu.Unlock()
}

// Duration reports the span's wall time so far (to now while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	end := s.end
	if end.IsZero() {
		end = timeNow()
	}
	return end.Sub(s.start)
}

// SpanJSON is one span on the wire: offsets are microseconds relative
// to the trace start, so a snapshot is stable under serialization and
// directly convertible to Chrome trace_event timestamps.
type SpanJSON struct {
	Name       string           `json:"name"`
	StartUs    int64            `json:"start_us"`
	DurationUs int64            `json:"dur_us"`
	Unfinished bool             `json:"unfinished,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []SpanJSON       `json:"children,omitempty"`
}

// Snapshot deep-copies the span tree. Safe to call while the job is
// still running (open spans report duration-to-now and Unfinished).
func (t *Trace) Snapshot() SpanJSON {
	if t == nil {
		return SpanJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.snapshotLocked(t.start)
}

func (s *Span) snapshotLocked(traceStart time.Time) SpanJSON {
	out := SpanJSON{
		Name:       s.name,
		StartUs:    s.start.Sub(traceStart).Microseconds(),
		DurationUs: s.durationLocked().Microseconds(),
		Unfinished: s.end.IsZero(),
	}
	if len(s.counters) > 0 {
		out.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			out.Counters[k] = v
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshotLocked(traceStart))
	}
	return out
}

// Shape renders the tree's structure ("job(queue,run(translate,...))")
// ignoring timings and counters — the deterministic part of a trace,
// used by tests to assert worker-count independence.
func (sp SpanJSON) Shape() string {
	out := sp.Name
	if len(sp.Children) == 0 {
		return out
	}
	parts := make([]string, len(sp.Children))
	for i, c := range sp.Children {
		parts[i] = c.Shape()
	}
	return out + "(" + join(parts) + ")"
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// Walk visits every span in the snapshot depth-first.
func (sp SpanJSON) Walk(fn func(SpanJSON)) {
	fn(sp)
	for _, c := range sp.Children {
		c.Walk(fn)
	}
}

// CounterKeys returns the span's counter names, sorted (test helper).
func (sp SpanJSON) CounterKeys() []string {
	keys := make([]string, 0, len(sp.Counters))
	for k := range sp.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ctxKey carries the active span on a context.
type ctxKey struct{}

// WithSpan returns a context carrying sp as the active tracing span.
// A nil span returns ctx unchanged, so disabled tracing adds nothing
// to the context chain.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span, or nil when the context is
// untraced. This is the single branch the disabled path pays.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
