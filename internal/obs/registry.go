package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the unified metrics surface: named monotonic counters
// and log-bucketed latency histograms. One Registry backs a server's
// /metrics endpoint; names are dot-separated ("backend.sql",
// "tenant.acme", "phase.translate").
//
// Counter and histogram handles are created on first use and live for
// the registry's lifetime, so hot paths can hold a *Histogram and
// observe lock-free (the registry lock guards only the name maps).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*atomic.Int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*atomic.Int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero.
func (r *Registry) Counter(name string) *atomic.Int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &atomic.Int64{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter.
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// Histogram returns the named histogram, creating it empty.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Observe records one duration in the named histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	r.Histogram(name).Observe(d)
}

// Counters snapshots every counter.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Histograms snapshots every histogram.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.hists))
	hs := make([]*Histogram, 0, len(r.hists))
	for name, h := range r.hists {
		names = append(names, name)
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(names))
	for i, name := range names {
		out[name] = hs[i].Snapshot()
	}
	return out
}

// HistogramNames lists registered histograms, sorted (test helper).
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// histBuckets is the number of power-of-two latency buckets. Bucket i
// holds observations with bits.Len64(nanos) == i, i.e. durations in
// [2^(i-1), 2^i) ns; 63 buckets cover everything an int64 can hold
// (~292 years), so no observation is ever dropped.
const histBuckets = 64

// Histogram is a lock-free log₂-bucketed latency histogram. Observe
// is a handful of atomic adds; quantiles are estimated from bucket
// geometry (each bucket spans a factor of two, so the estimate is
// within ~50% of the true value — the right trade for a histogram
// that is always on).
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

// bucketOf is bits.Len64 without the import: the index of the highest
// set bit plus one, and 0 for 0ns.
func bucketOf(ns int64) int {
	i := 0
	for v := uint64(ns); v != 0; v >>= 1 {
		i++
	}
	return i
}

// HistogramSnapshot is a histogram's point-in-time summary on the
// wire. Quantiles are bucket-midpoint estimates clamped to the
// observed maximum.
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	AvgSeconds float64 `json:"avg_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// Snapshot summarizes the histogram. Concurrent Observe calls may
// land between field reads; the snapshot is internally consistent
// enough for monitoring (counts never decrease).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	out := HistogramSnapshot{Count: h.count.Load(), MaxSeconds: float64(h.maxNs.Load()) / 1e9}
	if total == 0 {
		return out
	}
	out.AvgSeconds = float64(h.sumNs.Load()) / float64(total) / 1e9
	out.P50Seconds = quantile(&counts, total, 0.50, out.MaxSeconds)
	out.P95Seconds = quantile(&counts, total, 0.95, out.MaxSeconds)
	out.P99Seconds = quantile(&counts, total, 0.99, out.MaxSeconds)
	return out
}

// quantile finds the bucket holding the q-th observation (nearest
// rank) and returns the bucket range's midpoint in seconds, clamped
// to the observed max so a sparse top bucket cannot overshoot.
func quantile(counts *[histBuckets]int64, total int64, q, maxSeconds float64) float64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			lo := math.Exp2(float64(i - 1)) // bucket i holds [2^(i-1), 2^i) ns
			mid := lo * 1.5 / 1e9
			if maxSeconds > 0 && mid > maxSeconds {
				return maxSeconds
			}
			return mid
		}
	}
	return maxSeconds
}
