// Package bench is Qymera's benchmarking framework (the paper's third
// key feature): workload definitions, a cross-backend comparison runner,
// memory-capped capacity search, and one experiment module per paper
// artifact (Fig. 2, Table 1, the preliminary sparse-vs-dense experiment,
// and the demonstration scenarios of §4).
package bench

import (
	"fmt"
	"strings"
)

// Table is a simple result table rendered as aligned text, markdown, or
// CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Columns: cols}
}

// Add appends one row; the cell count must match the column count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values.
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.Add(cells...)
}

// Note attaches a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders a GitHub-style markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ",") + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}
