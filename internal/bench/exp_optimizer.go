package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "optimizer",
		Paper: "cost-based query optimization — plan quality with the optimizer on vs off",
		Desc:  "gate-stage query, a misordered join, and GHZ/QFT simulations with the cost-based optimizer enabled and disabled, asserting bit-identical results; qybench -benchjson BENCH_sqlengine_optimizer.json writes the machine-readable report",
		Run:   runOptimizerBench,
	})
}

// OptimizerBenchEntry is one workload measured with the optimizer off
// and on.
type OptimizerBenchEntry struct {
	Workload   string  `json:"workload"`
	SecondsOff float64 `json:"seconds_optimizer_off"`
	SecondsOn  float64 `json:"seconds_optimizer_on"`
	// Speedup is off/on wall time (> 1 means the optimizer won).
	Speedup float64 `json:"speedup"`
	// BitIdentical reports whether the on and off runs produced
	// bitwise-identical results (exact value types, int64 values, and
	// float64 bit patterns).
	BitIdentical bool  `json:"bit_identical"`
	Rows         int64 `json:"rows,omitempty"`
	// AllocsOff/AllocsOn are heap allocations of one run — the
	// deterministic view of the pre-sizing wins (wall time is noisy on
	// shared machines; allocation counts are not).
	AllocsOff int64  `json:"allocs_off,omitempty"`
	AllocsOn  int64  `json:"allocs_on,omitempty"`
	Digest    string `json:"digest,omitempty"`
}

// OptimizerBenchReport is the BENCH_sqlengine_optimizer.json payload.
type OptimizerBenchReport struct {
	Engine     string `json:"engine"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// AmplitudesBitIdentical aggregates every workload's BitIdentical
	// flag (the acceptance gate: plans may change, bits may not).
	AmplitudesBitIdentical bool `json:"amplitudes_bit_identical"`
	// RulesFired is the delta of the engine's optimizer counters across
	// the optimizer-on runs of this report.
	RulesFired map[string]int64      `json:"rules_fired"`
	Entries    []OptimizerBenchEntry `json:"entries"`
}

// resultDigest fingerprints a fully drained result set exactly (value
// types, int64 payloads, float64 bits, text bytes).
func resultDigest(rs *sqlengine.ResultSet) (string, int64, error) {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	var rows int64
	for {
		row, ok, err := rs.Next()
		if err != nil {
			return "", 0, err
		}
		if !ok {
			break
		}
		rows++
		for _, v := range row {
			put(uint64(v.T))
			put(uint64(v.I))
			put(math.Float64bits(v.F))
			h.Write([]byte(v.S))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64()), rows, nil
}

// timedQueryDigest runs a query Median3-timed and returns the wall
// time, the single-run allocation count (the deterministic signal),
// and the digest of its (re-run) result.
func timedQueryDigest(db *sqlengine.DB, sql string) (time.Duration, int64, string, int64, error) {
	wall, err := Median3(func() (time.Duration, error) {
		start := time.Now()
		rs, err := db.Query(sql)
		if err != nil {
			return 0, err
		}
		rs.Close()
		return time.Since(start), nil
	})
	if err != nil {
		return 0, 0, "", 0, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	rs, err := db.Query(sql)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, "", 0, err
	}
	defer rs.Close()
	digest, rows, err := resultDigest(rs)
	return wall, int64(after.Mallocs - before.Mallocs), digest, rows, err
}

// misorderedJoinDB builds a pair of tables and a join written with the
// large table on the build side — the classic plan mistake the
// cost-based build-side flip repairs.
func misorderedJoinDB(rows int, optimizer string) (*sqlengine.DB, string, error) {
	db, err := sqlengine.Open(sqlengine.Config{Parallelism: 1, Optimizer: optimizer})
	if err != nil {
		return nil, "", err
	}
	script := []string{
		"CREATE TABLE small (id INTEGER, name TEXT)",
		"INSERT INTO small VALUES (1, 'a'), (2, 'b'), (3, 'c')",
		"CREATE TABLE big (id INTEGER, v INTEGER)",
	}
	for _, s := range script {
		if _, err := db.Exec(s); err != nil {
			db.Close()
			return nil, "", err
		}
	}
	if err := fillTwoIntColumns(db, "big", rows); err != nil {
		db.Close()
		return nil, "", err
	}
	// COUNT/MIN are accumulation-order-insensitive, so the flip is legal
	// and the result is comparable bit for bit.
	q := "SELECT COUNT(*), MIN(big.v) FROM small JOIN big ON big.id = small.id"
	return db, q, nil
}

// fillTwoIntColumns bulk-inserts rows (i, i%97).
func fillTwoIntColumns(db *sqlengine.DB, table string, n int) error {
	const chunk = 500
	for i := 0; i < n; i += chunk {
		end := min(i+chunk, n)
		vals := make([]byte, 0, chunk*12)
		for k := i; k < end; k++ {
			if len(vals) > 0 {
				vals = append(vals, ',')
			}
			vals = fmt.Appendf(vals, "(%d, %d)", k, k%97)
		}
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES %s", table, vals)); err != nil {
			return err
		}
	}
	return nil
}

// RunOptimizerBench measures every workload with the optimizer off and
// on and returns the report.
func RunOptimizerBench(opts Options) (*OptimizerBenchReport, error) {
	report := &OptimizerBenchReport{
		Engine:                 "vectorized-batch/cost-based-optimizer",
		NumCPU:                 runtime.NumCPU(),
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		AmplitudesBitIdentical: true,
	}
	before := sqlengine.OptimizerCounters()

	// 1. The translated gate-stage query (join + group-by over the
	// nonzero-amplitude table): stats-driven hash-table pre-sizing and
	// capacity hints.
	stateRows := 1 << 17
	ghzQubits, qftQubits, parityQubits := 16, 10, 15
	if opts.Quick {
		stateRows = 1 << 14
		ghzQubits, qftQubits, parityQubits = 8, 6, 9
	}
	var entries []OptimizerBenchEntry
	{
		entry := OptimizerBenchEntry{Workload: "gate_stage_query"}
		var digests [2]string
		for i, optimizer := range []string{"off", "on"} {
			db, err := gateStageDB(stateRows, sqlengine.Config{Parallelism: 1, Optimizer: optimizer})
			if err != nil {
				return nil, fmt.Errorf("bench: optimizer gate stage: %w", err)
			}
			wall, allocs, digest, rows, err := timedQueryDigest(db, gateStageSQL)
			db.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: optimizer gate stage (%s): %w", optimizer, err)
			}
			digests[i] = digest
			entry.Rows = rows
			if optimizer == "off" {
				entry.SecondsOff = wall.Seconds()
				entry.AllocsOff = allocs
			} else {
				entry.SecondsOn = wall.Seconds()
				entry.AllocsOn = allocs
			}
		}
		entry.BitIdentical = digests[0] == digests[1]
		entry.Digest = digests[1]
		entries = append(entries, entry)
	}

	// 2. The misordered join: build-side flip.
	{
		entry := OptimizerBenchEntry{Workload: "misordered_join"}
		var digests [2]string
		for i, optimizer := range []string{"off", "on"} {
			db, q, err := misorderedJoinDB(stateRows, optimizer)
			if err != nil {
				return nil, fmt.Errorf("bench: optimizer misordered join: %w", err)
			}
			wall, allocs, digest, rows, err := timedQueryDigest(db, q)
			db.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: optimizer misordered join (%s): %w", optimizer, err)
			}
			digests[i] = digest
			entry.Rows = rows
			if optimizer == "off" {
				entry.SecondsOff = wall.Seconds()
				entry.AllocsOff = allocs
			} else {
				entry.SecondsOn = wall.Seconds()
				entry.AllocsOn = allocs
			}
		}
		entry.BitIdentical = digests[0] == digests[1]
		entry.Digest = digests[1]
		entries = append(entries, entry)
	}

	// 3. Full simulations through the SQL backend.
	for _, wl := range simCircuits(ghzQubits, qftQubits, parityQubits) {
		entry := OptimizerBenchEntry{Workload: wl.name}
		var digests [2]string
		for i, optimizer := range []string{"off", "on"} {
			var res *sim.Result
			wall, err := Median3(func() (time.Duration, error) {
				r, err := (&sim.SQL{Optimizer: optimizer, SpillDir: opts.SpillDir}).Run(wl.c)
				if err != nil {
					return 0, err
				}
				res = r
				return r.Stats.WallTime, nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: optimizer %s (%s): %w", wl.name, optimizer, err)
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			if _, err := (&sim.SQL{Optimizer: optimizer, SpillDir: opts.SpillDir}).Run(wl.c); err != nil {
				return nil, err
			}
			runtime.ReadMemStats(&after)
			digests[i] = stateDigest(res.State)
			entry.Rows = int64(res.State.Len())
			if optimizer == "off" {
				entry.SecondsOff = wall.Seconds()
				entry.AllocsOff = int64(after.Mallocs - before.Mallocs)
			} else {
				entry.SecondsOn = wall.Seconds()
				entry.AllocsOn = int64(after.Mallocs - before.Mallocs)
			}
		}
		entry.BitIdentical = digests[0] == digests[1]
		entry.Digest = digests[1]
		entries = append(entries, entry)
	}

	after := sqlengine.OptimizerCounters()
	report.RulesFired = map[string]int64{}
	for k, v := range after {
		if d := v - before[k]; d > 0 {
			report.RulesFired[k] = d
		}
	}
	for i := range entries {
		if entries[i].SecondsOn > 0 {
			entries[i].Speedup = entries[i].SecondsOff / entries[i].SecondsOn
		}
		report.AmplitudesBitIdentical = report.AmplitudesBitIdentical && entries[i].BitIdentical
	}
	report.Entries = entries
	return report, nil
}

// simCircuits lists the circuit workloads of the optimizer sweep. The
// parity superposition carries a dense 2^n-row state through every
// stage, so it is where the actual-informed pre-sizing hints pay off.
func simCircuits(ghzQubits, qftQubits, parityQubits int) []struct {
	name string
	c    *quantum.Circuit
} {
	return []struct {
		name string
		c    *quantum.Circuit
	}{
		{"ghz_sim", circuits.GHZ(ghzQubits)},
		{"qft_sim", circuits.QFT(qftQubits)},
		{"parity_sim", circuits.ParitySuperposition(parityQubits)},
	}
}

// OptimizerBenchJSON renders the report for
// BENCH_sqlengine_optimizer.json.
func OptimizerBenchJSON(opts Options) ([]byte, error) {
	report, err := RunOptimizerBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func runOptimizerBench(opts Options) ([]*Table, error) {
	report, err := RunOptimizerBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("Cost-based optimizer: plan quality on vs off",
		"workload", "off", "on", "speedup", "bit-identical", "rows")
	for _, e := range report.Entries {
		t.Addf(e.Workload,
			FormatDuration(time.Duration(e.SecondsOff*float64(time.Second))),
			FormatDuration(time.Duration(e.SecondsOn*float64(time.Second))),
			fmt.Sprintf("%.2fx", e.Speedup), e.BitIdentical, e.Rows)
	}
	t.Note("rules fired during the optimized runs: %v", report.RulesFired)
	t.Note("bit-identical = optimizer on/off results match exactly (types, int64 values, float64 bit patterns)")
	return []*Table{t}, nil
}
