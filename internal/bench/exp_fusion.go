package bench

import (
	"fmt"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		// "matrixfusion" is the paper's gate-matrix fusion ablation
		// (§3.2). The id "fusion" now names the engine's whole-circuit
		// chain-fusion benchmark (exp_chain_fusion.go).
		ID:    "matrixfusion",
		Paper: "§3.2 'Query Optimization' — gate fusion",
		Desc:  "ablation: SQL backend with matrix fusion off / same-qubits / subset; stages, runtime, intermediate rows",
		Run:   runFusion,
	})
	register(Experiment{
		ID:    "encoding",
		Paper: "§2.2 discussion — integer+bitwise encoding vs arithmetic index math",
		Desc:  "ablation: the paper's bitwise index expressions vs equivalent division/modulo expressions",
		Run:   runEncoding,
	})
}

func fusionWorkloads(opts Options) []*quantum.Circuit {
	if opts.Quick {
		return []*quantum.Circuit{
			circuits.GHZ(8),
			circuits.QFT(5),
			circuits.RandomDense(6, 2, 17),
		}
	}
	return []*quantum.Circuit{
		circuits.GHZ(14),
		circuits.QFT(8),
		circuits.RandomDense(9, 3, 17),
		circuits.HardwareEfficientAnsatz(8, 2, fixedParams(8*2*2)),
	}
}

func fixedParams(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.1 + 0.05*float64(i)
	}
	return p
}

func runFusion(opts Options) ([]*Table, error) {
	levels := []core.FusionLevel{core.FusionOff, core.FusionSameQubits, core.FusionSubset}
	var tables []*Table
	for _, c := range fusionWorkloads(opts) {
		ref, err := (&sim.StateVector{}).Run(c)
		if err != nil {
			return nil, err
		}
		t := NewTable(fmt.Sprintf("Gate fusion ablation — %s (%d gates)", c.Name(), c.Len()),
			"fusion", "SQL stages", "median time", "max intermediate rows", "fidelity")
		for _, lvl := range levels {
			b := &sim.SQL{Fusion: lvl, SpillDir: opts.SpillDir, Mode: core.MaterializedChain}
			var stats sim.Stats
			var fid float64
			med, err := Median3(func() (time.Duration, error) {
				res, err := b.Run(c)
				if err != nil {
					return 0, err
				}
				stats = res.Stats
				fid = res.State.Fidelity(ref.State)
				return res.Stats.WallTime, nil
			})
			if err != nil {
				return nil, err
			}
			tr, err := core.Translate(c, nil, core.Options{Fusion: lvl})
			if err != nil {
				return nil, err
			}
			t.Addf(lvl.String(), tr.StageCount, FormatDuration(med),
				stats.MaxIntermediateSize, fmt.Sprintf("%.6f", fid))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runEncoding(opts Options) ([]*Table, error) {
	var tables []*Table
	for _, c := range fusionWorkloads(opts) {
		ref, err := (&sim.StateVector{}).Run(c)
		if err != nil {
			return nil, err
		}
		t := NewTable(fmt.Sprintf("Index encoding ablation — %s (%d gates)", c.Name(), c.Len()),
			"encoding", "median time", "fidelity")
		for _, enc := range []core.Encoding{core.EncodingBitwise, core.EncodingArithmetic} {
			b := &sim.SQL{Encoding: enc, SpillDir: opts.SpillDir}
			var fid float64
			med, err := Median3(func() (time.Duration, error) {
				res, err := b.Run(c)
				if err != nil {
					return 0, err
				}
				fid = res.State.Fidelity(ref.State)
				return res.Stats.WallTime, nil
			})
			if err != nil {
				return nil, err
			}
			t.Addf(enc.String(), FormatDuration(med), fmt.Sprintf("%.6f", fid))
		}
		tables = append(tables, t)
	}
	return tables, nil
}
