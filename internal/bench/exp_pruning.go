package bench

import (
	"fmt"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "pruning",
		Paper: "§2.1 'Only nonzero basis states are stored' — amplitude pruning",
		Desc:  "ablation: HAVING-based pruning keeps interference-heavy circuits sparse; without it zero-amplitude rows accumulate",
		Run:   runPruning,
	})
}

func runPruning(opts Options) ([]*Table, error) {
	k := 10
	if opts.Quick {
		k = 6
	}
	secret := make([]bool, k)
	for i := range secret {
		secret[i] = i%2 == 0
	}

	// Workloads whose sparsity depends on destructive interference: the
	// H-layers temporarily densify the state and cancellation brings it
	// back — but only if zero rows are dropped.
	workloads := []*quantum.Circuit{
		circuits.BernsteinVazirani(secret),
		circuits.DeutschJozsa(k, true),
		echoCircuit(k),
	}

	var tables []*Table
	for _, c := range workloads {
		t := NewTable(fmt.Sprintf("Amplitude pruning ablation — %s (%d qubits, %d gates)",
			c.Name(), c.NumQubits(), c.Len()),
			"pruning", "median time", "final nonzero amps", "final table rows", "max state-table rows")
		for _, prune := range []bool{true, false} {
			eps := 0.0 // backend default (on)
			label := "on (HAVING)"
			if !prune {
				eps = -1 // negative disables
				label = "off"
			}
			// MaterializedChain mode measures every intermediate state
			// table's row count.
			b := &sim.SQL{PruneEps: eps, SpillDir: opts.SpillDir, Mode: core.MaterializedChain}
			var stats sim.Stats
			var finalAmps int
			med, err := Median3(func() (time.Duration, error) {
				res, err := b.Run(c)
				if err != nil {
					return 0, err
				}
				stats = res.Stats
				finalAmps = res.State.Len()
				return res.Stats.WallTime, nil
			})
			if err != nil {
				return nil, err
			}
			finalTableRows, err := countFinalTableRows(c, eps, opts)
			if err != nil {
				return nil, err
			}
			t.Addf(label, FormatDuration(med), finalAmps, finalTableRows, stats.MaxIntermediateSize)
		}
		t.Note("both runs pass through the same dense mid-circuit peak, but without the HAVING clause the rows whose amplitudes cancelled to zero stay in the final table (and every later stage) instead of vanishing")
		tables = append(tables, t)
	}
	return tables, nil
}

// countFinalTableRows executes the translation directly and counts the
// rows of the final state table, including zero-amplitude rows.
func countFinalTableRows(c *quantum.Circuit, eps float64, opts Options) (int64, error) {
	pe := eps
	if pe == 0 {
		pe = 1e-12
	}
	if pe < 0 {
		pe = 0
	}
	tr, err := core.Translate(c, nil, core.Options{Mode: core.MaterializedChain, PruneEps: pe})
	if err != nil {
		return 0, err
	}
	db, err := sqlengine.Open(sqlengine.Config{SpillDir: opts.SpillDir})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	for _, stmt := range tr.Statements() {
		if _, err := db.Exec(stmt); err != nil {
			return 0, err
		}
	}
	rs, err := db.Query("SELECT COUNT(*) FROM " + tr.FinalTable)
	if err != nil {
		return 0, err
	}
	defer rs.Close()
	rows, err := rs.All()
	if err != nil {
		return 0, err
	}
	return rows[0][0].AsInt()
}

// echoCircuit applies a dense layer and its inverse: the state passes
// through full density and returns to |0…0⟩ purely by cancellation.
func echoCircuit(k int) *quantum.Circuit {
	c := circuits.EqualSuperposition(k)
	inv, err := c.Inverse()
	if err != nil {
		panic(err)
	}
	if err := c.Compose(inv); err != nil {
		panic(err)
	}
	c.SetName(fmt.Sprintf("echo-%d", k))
	return c
}
