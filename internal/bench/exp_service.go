package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/quantum"
	"qymera/internal/service"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "service",
		Paper: "qymerad service tier — sync request throughput and plan-cache hit speedup over a GHZ/QFT mix",
		Desc:  "drives an in-process qymerad over loopback HTTP with concurrent clients, checks served amplitudes are bit-identical to direct runs, and measures cold translation vs plan-cache hits; qybench -benchjson BENCH_service.json writes the machine-readable report",
		Run:   runService,
	})
}

// ServicePlanCacheBench is the plan-cache section of the report: cold
// translation time vs the two cache-hit tiers for one deep
// parameterized circuit.
type ServicePlanCacheBench struct {
	// Counters observed on the server after the request mix (the mix
	// repeats circuits, so Hits must be > 0).
	Hits           uint64 `json:"hits"`
	StructuralHits uint64 `json:"structural_hits"`
	Misses         uint64 `json:"misses"`

	// Microbenchmark of the translation path itself (median of 3).
	ColdTranslateSeconds float64 `json:"cold_translate_seconds"`
	ExactHitSeconds      float64 `json:"exact_hit_seconds"`
	StructuralHitSeconds float64 `json:"structural_hit_seconds"`
	ExactHitSpeedup      float64 `json:"exact_hit_speedup"`
	StructuralHitSpeedup float64 `json:"structural_hit_speedup"`
	BenchCircuitGates    int     `json:"bench_circuit_gates"`
	BenchCircuitStages   int     `json:"bench_circuit_stages"`
}

// ServiceBenchReport is the BENCH_service.json payload.
type ServiceBenchReport struct {
	Engine      string   `json:"engine"`
	NumCPU      int      `json:"num_cpu"`
	Workers     int      `json:"workers"`
	Concurrency int      `json:"concurrency"`
	Requests    int      `json:"requests"`
	Mix         []string `json:"mix"`

	WallSeconds       float64 `json:"wall_seconds"`
	SyncThroughputRPS float64 `json:"sync_throughput_rps"`

	// AmplitudesBitIdentical: every mix circuit served over HTTP
	// produced the same state digest as a direct in-process run.
	AmplitudesBitIdentical bool `json:"amplitudes_bit_identical"`

	PlanCache ServicePlanCacheBench             `json:"plan_cache"`
	Backends  map[string]service.BackendLatency `json:"backends"`
}

// serviceMix is the request mix: named circuits, repeated round-robin
// so the plan cache sees repeats.
func serviceMix(opts Options) []struct {
	name string
	c    *quantum.Circuit
} {
	ghz, qft := 10, 7
	if opts.Quick {
		ghz, qft = 6, 5
	}
	return []struct {
		name string
		c    *quantum.Circuit
	}{
		{fmt.Sprintf("ghz-%d", ghz), circuits.GHZ(ghz)},
		{fmt.Sprintf("qft-%d", qft), circuits.QFT(qft)},
	}
}

// RunServiceBench measures the service tier and returns the report.
func RunServiceBench(opts Options) (*ServiceBenchReport, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	requests, concurrency := 64, 8
	if opts.Quick {
		requests, concurrency = 16, 4
	}

	report := &ServiceBenchReport{
		Engine:                 "qymerad (worker pool + plan cache + shared budget)",
		NumCPU:                 runtime.NumCPU(),
		Workers:                workers,
		Concurrency:            concurrency,
		Requests:               requests,
		AmplitudesBitIdentical: true,
	}

	srv := service.New(service.Config{Workers: workers, SpillDir: opts.SpillDir, QueueDepth: requests + concurrency})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go http.Serve(l, srv)
	base := "http://" + l.Addr().String()

	mix := serviceMix(opts)
	bodies := make([][]byte, len(mix))
	for i, wl := range mix {
		report.Mix = append(report.Mix, wl.name)
		doc, err := circuitDocJSON(wl.c)
		if err != nil {
			return nil, err
		}
		bodies[i], err = json.Marshal(service.Request{Circuit: doc})
		if err != nil {
			return nil, err
		}
	}

	// Correctness first: each mix circuit over HTTP vs a direct run.
	for i, wl := range mix {
		direct, err := (&sim.SQL{SpillDir: opts.SpillDir}).Run(wl.c)
		if err != nil {
			return nil, fmt.Errorf("bench: service: direct %s: %w", wl.name, err)
		}
		served, err := postSimulate(base, bodies[i])
		if err != nil {
			return nil, fmt.Errorf("bench: service: serve %s: %w", wl.name, err)
		}
		if stateDigest(direct.State) != stateDigest(served) {
			report.AmplitudesBitIdentical = false
		}
	}

	// Sync throughput: concurrency clients race through the request
	// mix. The repeats hit the plan cache, as the counters show.
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				if _, err := postSimulate(base, bodies[i%len(bodies)]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, fmt.Errorf("bench: service: %w", err)
	}
	report.WallSeconds = time.Since(start).Seconds()
	if report.WallSeconds > 0 {
		report.SyncThroughputRPS = float64(requests) / report.WallSeconds
	}

	metrics := srv.Metrics()
	report.Backends = metrics.Backends
	report.PlanCache.Hits = metrics.PlanCache.Hits
	report.PlanCache.StructuralHits = metrics.PlanCache.StructuralHits
	report.PlanCache.Misses = metrics.PlanCache.Misses

	if err := benchPlanCache(opts, &report.PlanCache); err != nil {
		return nil, err
	}
	return report, nil
}

// benchPlanCache microbenchmarks the translation path: cold Translate
// vs exact and structural cache hits, on a deep parameterized ansatz
// (many distinct gate tables — the translation-heavy shape).
func benchPlanCache(opts Options, out *ServicePlanCacheBench) error {
	n, layers := 10, 4
	if opts.Quick {
		n, layers = 8, 2
	}
	point := func(theta float64) *quantum.Circuit {
		params := make([]float64, n*layers*2)
		for i := range params {
			params[i] = theta * (1 + 0.01*float64(i))
		}
		return circuits.HardwareEfficientAnsatz(n, layers, params)
	}
	c0 := point(0.37)
	coreOpts := core.Options{PruneEps: 1e-12}

	tr, err := core.Translate(c0, nil, coreOpts)
	if err != nil {
		return err
	}
	out.BenchCircuitGates = c0.Len()
	out.BenchCircuitStages = tr.StageCount

	cold, err := Median3(func() (time.Duration, error) {
		start := time.Now()
		_, terr := core.Translate(c0, nil, coreOpts)
		return time.Since(start), terr
	})
	if err != nil {
		return err
	}

	cache := sim.NewPlanCache(8)
	if _, err := cache.Translation(c0, nil, coreOpts); err != nil {
		return err
	}
	exact, err := Median3(func() (time.Duration, error) {
		start := time.Now()
		_, err := cache.Translation(c0, nil, coreOpts)
		return time.Since(start), err
	})
	if err != nil {
		return err
	}
	// Each structural measurement uses a fresh sweep point: repeating
	// one point would turn the second call into an exact hit.
	sweep := 0
	structural, err := Median3(func() (time.Duration, error) {
		sweep++
		c := point(1.21 + 0.1*float64(sweep))
		start := time.Now()
		_, err := cache.Translation(c, nil, coreOpts)
		return time.Since(start), err
	})
	if err != nil {
		return err
	}

	out.ColdTranslateSeconds = cold.Seconds()
	out.ExactHitSeconds = exact.Seconds()
	out.StructuralHitSeconds = structural.Seconds()
	if exact > 0 {
		out.ExactHitSpeedup = cold.Seconds() / exact.Seconds()
	}
	if structural > 0 {
		out.StructuralHitSpeedup = cold.Seconds() / structural.Seconds()
	}
	return nil
}

// circuitDocJSON renders a circuit as the service's circuit document.
func circuitDocJSON(c *quantum.Circuit) (json.RawMessage, error) {
	type gateJSON struct {
		Name   string    `json:"name"`
		Qubits []int     `json:"qubits"`
		Params []float64 `json:"params,omitempty"`
	}
	doc := struct {
		NumQubits int        `json:"num_qubits"`
		Gates     []gateJSON `json:"gates"`
	}{NumQubits: c.NumQubits()}
	for _, g := range c.Gates() {
		doc.Gates = append(doc.Gates, gateJSON{g.Name, g.Qubits, g.Params})
	}
	return json.Marshal(doc)
}

// postSimulate POSTs one sync request and rebuilds the served state.
func postSimulate(base string, body []byte) (*quantum.State, error) {
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d from /v1/simulate", resp.StatusCode)
	}
	var res service.ResultJSON
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, err
	}
	st := quantum.NewState(res.NumQubits)
	for _, a := range res.Amplitudes {
		st.Set(a.S, complex(a.R, a.I))
	}
	return st, nil
}

// ServiceBenchJSON renders the report for BENCH_service.json.
func ServiceBenchJSON(opts Options) ([]byte, error) {
	report, err := RunServiceBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func runService(opts Options) ([]*Table, error) {
	report, err := RunServiceBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("qymerad service tier",
		"metric", "value")
	t.Addf("sync throughput", fmt.Sprintf("%.1f req/s (%d requests, %d clients, %d workers)",
		report.SyncThroughputRPS, report.Requests, report.Concurrency, report.Workers))
	t.Addf("amplitudes bit-identical (served vs direct)", report.AmplitudesBitIdentical)
	pc := report.PlanCache
	t.Addf("plan cache counters", fmt.Sprintf("%d exact + %d structural hits / %d misses", pc.Hits, pc.StructuralHits, pc.Misses))
	t.Addf("cold translation", FormatDuration(time.Duration(pc.ColdTranslateSeconds*float64(time.Second))))
	t.Addf("exact cache hit", fmt.Sprintf("%s (%.0fx)", FormatDuration(time.Duration(pc.ExactHitSeconds*float64(time.Second))), pc.ExactHitSpeedup))
	t.Addf("structural cache hit", fmt.Sprintf("%s (%.1fx)", FormatDuration(time.Duration(pc.StructuralHitSeconds*float64(time.Second))), pc.StructuralHitSpeedup))
	for name, lat := range report.Backends {
		t.Addf("latency "+name, fmt.Sprintf("%d runs, avg %s, max %s", lat.Count,
			FormatDuration(time.Duration(lat.AvgSeconds*float64(time.Second))),
			FormatDuration(time.Duration(lat.MaxSeconds*float64(time.Second)))))
	}
	t.Note("num_cpu=%d; the mix (%v) repeats circuits, so exact hits must be > 0", report.NumCPU, report.Mix)
	return []*Table{t}, nil
}
