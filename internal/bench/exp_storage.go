package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "storage",
		Paper: "sparsity-first storage — per-morsel zone maps + compressed column encodings with skip-scan",
		Desc:  "norm-pruned scan and gate-stage query over a nearly sparse amplitude table with encodings on and off, asserting bit-identical results and counting skipped morsels; qybench -benchjson BENCH_sqlengine_storage.json writes the machine-readable report",
		Run:   runStorageBench,
	})
}

// StorageBenchEntry is one workload measured with the sparsity-first
// storage tier off and on.
type StorageBenchEntry struct {
	Workload   string  `json:"workload"`
	SecondsOff float64 `json:"seconds_encodings_off"`
	SecondsOn  float64 `json:"seconds_encodings_on"`
	// Speedup is off/on wall time (> 1 means the storage tier won).
	Speedup float64 `json:"speedup"`
	// BitIdentical reports whether the on and off runs produced
	// bitwise-identical results (exact value types, int64 values, and
	// float64 bit patterns, in the same row order).
	BitIdentical bool   `json:"bit_identical"`
	Rows         int64  `json:"rows,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	Digest       string `json:"digest,omitempty"`
}

// StorageBenchReport is the BENCH_sqlengine_storage.json payload.
type StorageBenchReport struct {
	Engine     string `json:"engine"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SparseSpeedup is the headline number: the norm-pruned scan over a
	// nearly sparse amplitude table (nonzeros confined to 2 of 16
	// morsels) with encodings on vs off — zone maps skip the provably
	// empty morsels without decoding. The CI gate asserts > 1.
	SparseSpeedup float64 `json:"sparse_speedup"`
	// MorselsSkipped is the zone-map skip count across the encodings-on
	// runs (the CI gate asserts > 0: the skip path actually engaged).
	MorselsSkipped int64 `json:"morsels_skipped"`
	// ResidentBytesOff/On are the sparse table's steady-state resident
	// footprints under each setting; CompressionRatio is off/on.
	ResidentBytesOff int64   `json:"resident_bytes_off"`
	ResidentBytesOn  int64   `json:"resident_bytes_on"`
	CompressionRatio float64 `json:"compression_ratio"`
	// BitIdentical aggregates every workload's flag (the acceptance
	// gate: footprint and throughput may change, result bits may not).
	BitIdentical bool `json:"bit_identical"`
	// StorageCounters is the delta of the engine's sparsity-storage
	// counters across the encodings-on runs (morsels_skipped,
	// chunks_skipped, encoded_rle/dict/sparse, encoded_chunk_cols,
	// decode_fallbacks, kernel_encoded_binds).
	StorageCounters map[string]int64    `json:"storage_counters"`
	Entries         []StorageBenchEntry `json:"entries"`
}

// sparseAmplitudeDB builds a nearly sparse nonzero-amplitude table: the
// state index is dense, but the amplitude columns are zero outside the
// last eighth of the rows (2 of 16 morsels at the full size) — the
// regime a circuit that concentrates amplitude mass produces. The
// amplitude columns sparse-encode and the norm-prune zone check proves
// all-zero morsels empty. A 4-row Hadamard gate table rides along for
// the gate-stage workload.
func sparseAmplitudeDB(rows int, cfg sqlengine.Config) (*sqlengine.DB, error) {
	db, err := sqlengine.Open(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		db.Close()
		return nil, err
	}
	dense := rows - rows/8
	batch := make([]string, 0, 500)
	for k := 0; k < rows; k++ {
		r, im := 0.0, 0.0
		if k >= dense {
			r, im = 1.0/float64(k-dense+2), 0.25/float64(k-dense+3)
		}
		batch = append(batch, fmt.Sprintf("(%d, %g, %g)", k, r, im))
		if len(batch) == 500 || k == rows-1 {
			if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
				db.Close()
				return nil, err
			}
			batch = batch[:0]
		}
	}
	if _, err := db.Exec("CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		db.Close()
		return nil, err
	}
	if _, err := db.Exec("INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// sparseScanSQL is the norm-prune shape the translator pushes between
// gate stages: keep only rows whose amplitude norm clears the epsilon.
const sparseScanSQL = `SELECT s, r, i FROM t WHERE ((r * r) + (i * i)) > 0.000000000001 ORDER BY s`

// storageEntry measures one cached query over the sparse table with
// encodings off and on at the given worker count.
func storageEntry(name, sql string, stateRows, workers, reps int) (StorageBenchEntry, error) {
	entry := StorageBenchEntry{Workload: name, Workers: workers}
	var digests [2]string
	for i, encodings := range []string{"off", "on"} {
		db, err := sparseAmplitudeDB(stateRows, sqlengine.Config{Parallelism: workers, Encodings: encodings})
		if err != nil {
			return entry, fmt.Errorf("bench: storage %s: %w", name, err)
		}
		wall, digest, rows, err := timedCachedQuery(db, sql, reps)
		db.Close()
		if err != nil {
			return entry, fmt.Errorf("bench: storage %s (encodings=%s): %w", name, encodings, err)
		}
		digests[i] = digest
		entry.Rows = rows
		if encodings == "off" {
			entry.SecondsOff = wall.Seconds()
		} else {
			entry.SecondsOn = wall.Seconds()
		}
	}
	entry.BitIdentical = digests[0] == digests[1]
	entry.Digest = digests[1]
	if entry.SecondsOn > 0 {
		entry.Speedup = entry.SecondsOff / entry.SecondsOn
	}
	return entry, nil
}

// measureResidentBytes freezes the sparse table (one full scan) and
// reports the engine's resident footprint under the given setting.
func measureResidentBytes(stateRows int, encodings string) (int64, error) {
	db, err := sparseAmplitudeDB(stateRows, sqlengine.Config{Parallelism: 1, Encodings: encodings})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	rs, err := db.Query("SELECT s FROM t WHERE s < 0")
	if err != nil {
		return 0, err
	}
	rs.Close()
	return db.Stats().LiveBytes, nil
}

// RunStorageBench measures every workload with the storage tier off and
// on and returns the report.
func RunStorageBench(opts Options) (*StorageBenchReport, error) {
	report := &StorageBenchReport{
		Engine:       "vectorized-batch/sparsity-first-storage",
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BitIdentical: true,
	}
	before := sqlengine.StorageCounters()

	stateRows, reps := 1<<17, 5
	ghzQubits := 14
	if opts.Quick {
		stateRows, reps = 1<<15, 3
		ghzQubits = 8
	}

	// 1. The headline: the norm-pruned scan over the nearly sparse
	// table. Zone maps prove the all-zero morsels empty, so the scan
	// touches 2 of 16 morsels; the amplitude columns are sparse-encoded.
	sparse, err := storageEntry("sparse_scan", sparseScanSQL, stateRows, 1, reps)
	if err != nil {
		return nil, err
	}
	report.SparseSpeedup = sparse.Speedup
	entries := []StorageBenchEntry{sparse}

	// 2. The same scan on the morsel-parallel path: workers skip zoned
	// morsels in the claim loop before any decode.
	par, err := storageEntry("sparse_scan_parallel", sparseScanSQL, stateRows, 4, reps)
	if err != nil {
		return nil, err
	}
	entries = append(entries, par)

	// 3. The gate-stage join+aggregate over the sparse table: the
	// compiled kernel binds the sparse-encoded amplitude columns.
	gate, err := storageEntry("gate_stage_sparse", gateStageSQL, stateRows, 1, reps)
	if err != nil {
		return nil, err
	}
	entries = append(entries, gate)

	// 4. A full simulation: GHZ keeps 2 nonzeros the whole run — the
	// extreme of the sparse regime the storage tier targets.
	simEntry := StorageBenchEntry{Workload: "ghz_sim"}
	var digests [2]string
	for i, encodings := range []string{"off", "on"} {
		c := circuits.GHZ(ghzQubits)
		var res *sim.Result
		wall, err := Median3(func() (time.Duration, error) {
			r, err := (&sim.SQL{Encodings: encodings, SpillDir: opts.SpillDir}).Run(c)
			if err != nil {
				return 0, err
			}
			res = r
			return r.Stats.WallTime, nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: storage ghz_sim (encodings=%s): %w", encodings, err)
		}
		digests[i] = stateDigest(res.State)
		simEntry.Rows = int64(res.State.Len())
		if encodings == "off" {
			simEntry.SecondsOff = wall.Seconds()
		} else {
			simEntry.SecondsOn = wall.Seconds()
		}
	}
	simEntry.BitIdentical = digests[0] == digests[1]
	simEntry.Digest = digests[1]
	if simEntry.SecondsOn > 0 {
		simEntry.Speedup = simEntry.SecondsOff / simEntry.SecondsOn
	}
	entries = append(entries, simEntry)

	// Footprint: the sparse table's resident bytes under each setting.
	if report.ResidentBytesOff, err = measureResidentBytes(stateRows, "off"); err != nil {
		return nil, fmt.Errorf("bench: storage resident bytes (off): %w", err)
	}
	if report.ResidentBytesOn, err = measureResidentBytes(stateRows, "on"); err != nil {
		return nil, fmt.Errorf("bench: storage resident bytes (on): %w", err)
	}
	if report.ResidentBytesOn > 0 {
		report.CompressionRatio = float64(report.ResidentBytesOff) / float64(report.ResidentBytesOn)
	}

	after := sqlengine.StorageCounters()
	report.StorageCounters = map[string]int64{}
	for k, v := range after {
		if d := v - before[k]; d > 0 {
			report.StorageCounters[k] = d
		}
	}
	report.MorselsSkipped = report.StorageCounters["morsels_skipped"]
	for _, e := range entries {
		report.BitIdentical = report.BitIdentical && e.BitIdentical
	}
	report.Entries = entries
	return report, nil
}

// StorageBenchJSON renders the report for BENCH_sqlengine_storage.json.
func StorageBenchJSON(opts Options) ([]byte, error) {
	report, err := RunStorageBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// StorageGate validates a BENCH_sqlengine_storage.json report: results
// bit-identical, the zone-map skip path actually engaged, and the
// sparse scan actually won. The CI storage gate runs it on every push.
func StorageGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r StorageBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("storage gate: %s: %w", path, err)
	}
	if !r.BitIdentical {
		return fmt.Errorf("storage gate: %s: encodings changed result bits", path)
	}
	for _, e := range r.Entries {
		if !e.BitIdentical {
			return fmt.Errorf("storage gate: %s: %s: encodings changed result bits", path, e.Workload)
		}
	}
	if r.MorselsSkipped <= 0 {
		return fmt.Errorf("storage gate: %s: zone maps never skipped a morsel", path)
	}
	if r.SparseSpeedup <= 1 {
		return fmt.Errorf("storage gate: %s: sparse scan not faster with encodings: %.3f", path, r.SparseSpeedup)
	}
	return nil
}

func runStorageBench(opts Options) ([]*Table, error) {
	report, err := RunStorageBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("Sparsity-first storage: zone-map skip-scan + compressed encodings on vs off",
		"workload", "off", "on", "speedup", "bit-identical", "rows", "workers")
	for _, e := range report.Entries {
		t.Addf(e.Workload,
			FormatDuration(time.Duration(e.SecondsOff*float64(time.Second))),
			FormatDuration(time.Duration(e.SecondsOn*float64(time.Second))),
			fmt.Sprintf("%.2fx", e.Speedup), e.BitIdentical, e.Rows, e.Workers)
	}
	t.Note("storage counters during the encodings-on runs: %v", report.StorageCounters)
	t.Note("sparse table resident bytes: %d plain vs %d encoded (%.2fx)",
		report.ResidentBytesOff, report.ResidentBytesOn, report.CompressionRatio)
	t.Note("bit-identical = encodings on/off results match exactly (types, int64 values, float64 bit patterns, row order)")
	return []*Table{t}, nil
}
