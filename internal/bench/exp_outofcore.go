package bench

import (
	"fmt"
	"math"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "outofcore",
		Paper: "§3.3 'Out-of-Core Simulation'",
		Desc:  "dense circuit under shrinking memory caps: the SQL backend spills to disk and still completes correctly",
		Run:   runOutOfCore,
	})
}

func runOutOfCore(opts Options) ([]*Table, error) {
	n := 12
	if opts.Quick {
		n = 10
	}
	c := circuits.EqualSuperposition(n)
	ref, err := (&sim.StateVector{}).Run(c)
	if err != nil {
		return nil, err
	}

	budgets := []int64{0, 512 << 10, 128 << 10, 32 << 10}
	t := NewTable(fmt.Sprintf("Out-of-core simulation — equal superposition n=%d (%d final rows)", n, 1<<n),
		"memory cap", "median time", "peak memory", "spilled rows", "fidelity", "check")
	for _, budget := range budgets {
		b := &sim.SQL{MemoryBudget: budget, SpillDir: opts.SpillDir}
		var stats sim.Stats
		var fid float64
		med, err := Median3(func() (time.Duration, error) {
			res, err := b.Run(c)
			if err != nil {
				return 0, err
			}
			stats = res.Stats
			fid = res.State.Fidelity(ref.State)
			return res.Stats.WallTime, nil
		})
		if err != nil {
			return nil, err
		}
		cap := "unlimited"
		if budget > 0 {
			cap = FormatBytes(budget)
		}
		t.Addf(cap, FormatDuration(med), FormatBytes(stats.PeakBytes),
			stats.SpilledRows, fmt.Sprintf("%.6f", fid),
			verdict(math.Abs(fid-1) < 1e-9))
	}
	t.Note("peak memory stays bounded by the cap (soft, see sqlengine docs) while spilled rows grow — the run completes at any cap, unlike the in-memory backends")
	return []*Table{t}, nil
}
