package bench

import (
	"strings"
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Add("1", "hello")
	tb.Addf(2, 3.14159)
	tb.Note("footnote %d", 7)

	text := tb.Text()
	if !strings.Contains(text, "== demo ==") || !strings.Contains(text, "hello") || !strings.Contains(text, "note: footnote 7") {
		t.Fatalf("text:\n%s", text)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "x")
	tb.Add(`with,comma and "quote"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma and ""quote"""`) {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestTableMismatchedRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("", "a", "b").Add("only-one")
}

func TestCompareProducesFidelity(t *testing.T) {
	c := circuits.GHZ(4)
	results := Compare(c, []sim.Backend{&sim.StateVector{}, &sim.SQL{SpillDir: t.TempDir()}})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("errs = %v, %v", results[0].Err, results[1].Err)
	}
	if results[1].Fidelity < 0.999999 {
		t.Fatalf("fidelity = %v", results[1].Fidelity)
	}
}

func TestMaxQubitsFindsBoundary(t *testing.T) {
	// 2^n * 16 bytes <= 16 KB ⇒ n <= 10.
	n, err := MaxQubits(circuits.GHZ,
		func() sim.Backend { return &sim.StateVector{MemoryBudget: 16 << 10} }, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("max qubits = %d, want 10", n)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"encoding", "fig2", "fusion", "ghz", "kernel", "matrixfusion", "obs", "optimizer", "outofcore", "parity", "prelim", "pruning", "service", "sqlengine", "sqlengine_parallel", "storage", "storm", "superpos", "sweep", "table1"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("experiment[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Paper == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

// TestAllExperimentsQuick executes every experiment in quick mode; each
// must produce at least one non-empty table and no FAIL verdicts.
func TestAllExperimentsQuick(t *testing.T) {
	opts := Options{Quick: true, SpillDir: t.TempDir()}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(opts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tb.Title)
				}
				if strings.Contains(tb.Text(), "FAIL") {
					t.Fatalf("%s: FAIL verdict in:\n%s", e.ID, tb.Text())
				}
			}
		})
	}
}

func TestFormatHelpers(t *testing.T) {
	if FormatBytes(512) != "512B" || FormatBytes(2048) != "2.0KB" || FormatBytes(3<<20) != "3.0MB" {
		t.Fatalf("bytes: %s %s %s", FormatBytes(512), FormatBytes(2048), FormatBytes(3<<20))
	}
	if !strings.HasSuffix(FormatDuration(1500), "µs") {
		t.Fatalf("duration: %s", FormatDuration(1500))
	}
}

func TestCompactSQL(t *testing.T) {
	in := "SELECT a,\n       b\nFROM t\n"
	if got := compactSQL(in); got != "SELECT a, b FROM t" {
		t.Fatalf("compact = %q", got)
	}
}
