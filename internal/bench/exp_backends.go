package bench

import (
	"fmt"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "ghz",
		Paper: "§4 'Simulation Method Benchmarking' — GHZ preparation",
		Desc:  "all five backends on GHZ circuits of growing width: time, memory, intermediate size",
		Run: func(opts Options) ([]*Table, error) {
			ns := []int{4, 8, 12, 16, 20}
			if opts.Quick {
				ns = []int{4, 8}
			}
			return runBackendSweep(opts, "GHZ preparation", circuits.GHZ, ns, true)
		},
	})
	register(Experiment{
		ID:    "superpos",
		Paper: "§4 'Simulation Method Benchmarking' — equal superposition",
		Desc:  "all five backends on H^⊗n circuits: dense workload where the statevector should win",
		Run: func(opts Options) ([]*Table, error) {
			ns := []int{4, 8, 10, 12}
			if opts.Quick {
				ns = []int{4, 8}
			}
			return runBackendSweep(opts, "equal superposition", circuits.EqualSuperposition, ns, true)
		},
	})
}

// benchBackends builds the standard five-method comparison set, the
// dense reference first.
func benchBackends(opts Options, includeMPS bool) []sim.Backend {
	out := []sim.Backend{
		&sim.StateVector{},
		&sim.Sparse{},
		&sim.SQL{SpillDir: opts.SpillDir},
		&sim.DD{},
	}
	if includeMPS {
		out = append(out, &sim.MPS{})
	}
	return out
}

// runBackendSweep produces one table per register width.
func runBackendSweep(opts Options, title string, build func(int) *quantum.Circuit, ns []int, includeMPS bool) ([]*Table, error) {
	var tables []*Table
	for _, n := range ns {
		c := build(n)
		t := NewTable(fmt.Sprintf("%s, n=%d (%d gates)", title, n, c.Len()),
			"backend", "median time", "peak memory", "max intermediate", "final rows", "fidelity vs statevector")
		for _, b := range benchBackends(opts, includeMPS) {
			var last sim.Stats
			var fid float64 = -1
			med, err := Median3(func() (time.Duration, error) {
				res, err := b.Run(c)
				if err != nil {
					return 0, err
				}
				last = res.Stats
				return res.Stats.WallTime, nil
			})
			if err != nil {
				t.Addf(b.Name(), "error: "+err.Error(), "-", "-", "-", "-")
				continue
			}
			// Fidelity from a final dedicated run against the reference.
			ref, err := (&sim.StateVector{}).Run(c)
			if err == nil {
				res, err := b.Run(c)
				if err == nil {
					fid = res.State.Fidelity(ref.State)
				}
			}
			t.Addf(b.Name(), FormatDuration(med), FormatBytes(last.PeakBytes),
				last.MaxIntermediateSize, last.FinalNonzeros, fmt.Sprintf("%.6f", fid))
		}
		tables = append(tables, t)
	}
	return tables, nil
}
