package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "sqlengine",
		Paper: "engine throughput — GHZ/QFT/parity via the SQL backend",
		Desc:  "vectorized relational engine benchmark: per-workload wall time and gate-row throughput; qybench -benchjson writes the machine-readable BENCH_sqlengine.json",
		Run:   runSQLEngine,
	})
}

// EngineBenchEntry is one workload measurement of the SQL backend.
type EngineBenchEntry struct {
	Workload    string  `json:"workload"`
	Qubits      int     `json:"qubits"`
	Gates       int     `json:"gates"`
	WallSeconds float64 `json:"wall_seconds"`
	// MaxRows is the largest intermediate nonzero-amplitude table.
	MaxRows int64 `json:"max_intermediate_rows"`
	// GateRowsPerSec approximates engine throughput as gate count times
	// the peak intermediate table size divided by wall time — an upper
	// bound on the rows each join+group-by stage pushes per second.
	GateRowsPerSec float64 `json:"gate_rows_per_sec"`
	SpilledRows    int64   `json:"spilled_rows"`
	FinalNonzeros  int     `json:"final_nonzeros"`
}

// EngineBenchReport is the machine-readable BENCH_sqlengine.json
// payload, recording engine throughput so runs before and after an
// executor change can be diffed.
type EngineBenchReport struct {
	Engine    string             `json:"engine"`
	BatchSize int                `json:"batch_size"`
	Entries   []EngineBenchEntry `json:"entries"`
}

// engineWorkloads are the circuit families exercised by the engine
// benchmark.
func engineWorkloads(quick bool) []struct {
	name  string
	n     int
	build func(int) *quantum.Circuit
} {
	ghz, qft, par := 16, 10, 12
	if quick {
		ghz, qft, par = 8, 6, 6
	}
	return []struct {
		name  string
		n     int
		build func(int) *quantum.Circuit
	}{
		{"ghz", ghz, circuits.GHZ},
		{"qft", qft, circuits.QFT},
		{"parity", par, circuits.ParitySuperposition},
	}
}

// RunEngineBench executes the engine workloads through the SQL backend
// and returns the throughput report.
func RunEngineBench(opts Options) (*EngineBenchReport, error) {
	report := &EngineBenchReport{Engine: "vectorized-batch", BatchSize: sqlengine.BatchSize}
	for _, w := range engineWorkloads(opts.Quick) {
		c := w.build(w.n)
		var res *sim.Result
		wall, err := Median3(func() (time.Duration, error) {
			r, err := (&sim.SQL{SpillDir: opts.SpillDir}).Run(c)
			if err != nil {
				return 0, err
			}
			res = r
			return r.Stats.WallTime, nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: sqlengine workload %s: %w", w.name, err)
		}
		secs := wall.Seconds()
		entry := EngineBenchEntry{
			Workload:      w.name,
			Qubits:        c.NumQubits(),
			Gates:         res.Stats.GateCount,
			WallSeconds:   secs,
			MaxRows:       res.Stats.MaxIntermediateSize,
			SpilledRows:   res.Stats.SpilledRows,
			FinalNonzeros: res.Stats.FinalNonzeros,
		}
		if secs > 0 {
			entry.GateRowsPerSec = float64(res.Stats.GateCount) * float64(res.Stats.MaxIntermediateSize) / secs
		}
		report.Entries = append(report.Entries, entry)
	}
	return report, nil
}

// EngineBenchJSON renders the report for BENCH_sqlengine.json.
func EngineBenchJSON(opts Options) ([]byte, error) {
	report, err := RunEngineBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func runSQLEngine(opts Options) ([]*Table, error) {
	report, err := RunEngineBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("SQL engine throughput (vectorized batch executor)",
		"workload", "qubits", "gates", "wall", "max rows", "gate-rows/s", "spilled rows")
	for _, e := range report.Entries {
		t.Addf(e.Workload, e.Qubits, e.Gates,
			FormatDuration(time.Duration(e.WallSeconds*float64(time.Second))),
			e.MaxRows, fmt.Sprintf("%.3g", e.GateRowsPerSec), e.SpilledRows)
	}
	t.Note("batch=%d; gate-rows/s = gates x max intermediate rows / wall time", report.BatchSize)
	return []*Table{t}, nil
}
