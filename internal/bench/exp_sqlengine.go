package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "sqlengine",
		Paper: "engine throughput — GHZ/QFT/parity via the SQL backend",
		Desc:  "vectorized relational engine benchmark: per-workload wall time and gate-row throughput; qybench -benchjson writes the machine-readable BENCH_sqlengine.json",
		Run:   runSQLEngine,
	})
}

// EngineBenchEntry is one workload measurement of the SQL backend.
type EngineBenchEntry struct {
	Workload    string  `json:"workload"`
	Qubits      int     `json:"qubits"`
	Gates       int     `json:"gates"`
	WallSeconds float64 `json:"wall_seconds"`
	// MaxRows is the largest intermediate nonzero-amplitude table.
	MaxRows int64 `json:"max_intermediate_rows"`
	// GateRowsPerSec approximates engine throughput as gate count times
	// the peak intermediate table size divided by wall time — an upper
	// bound on the rows each join+group-by stage pushes per second.
	GateRowsPerSec float64 `json:"gate_rows_per_sec"`
	SpilledRows    int64   `json:"spilled_rows"`
	FinalNonzeros  int     `json:"final_nonzeros"`
	// AllocsPerOp is the mean heap allocations per full simulation run
	// of this workload (three timed runs), recorded per experiment so
	// allocation regressions show up in baseline diffs.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// GateStageAllocBench measures the fixed-size gate-stage query — one
// translated join+group-by over a synthetic amplitude table — with
// allocation counts. Its size is independent of -quick, so a CI run can
// compare allocs/op against the committed baseline (the allocation
// regression gate: see cmd/qybench -compareallocs).
type GateStageAllocBench struct {
	Rows        int     `json:"rows"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// EngineBenchReport is the machine-readable BENCH_sqlengine.json
// payload, recording engine throughput and allocation behaviour so runs
// before and after an executor change can be diffed.
type EngineBenchReport struct {
	Engine    string `json:"engine"`
	Storage   string `json:"storage"`
	BatchSize int    `json:"batch_size"`
	// GateStage is the fixed-size allocation benchmark backing the CI
	// allocation-regression gate, measured on the default configuration
	// (compressed encodings on — the operate-on-encoded path).
	GateStage *GateStageAllocBench `json:"gate_stage"`
	// GateStagePlain is the same benchmark with encodings off (plain
	// typed vectors), so the gate covers both storage paths.
	GateStagePlain *GateStageAllocBench `json:"gate_stage_plain,omitempty"`
	Entries        []EngineBenchEntry   `json:"entries"`
}

// gateStageAllocRows is the fixed input size of the allocation gate;
// deliberately not scaled by -quick so baselines stay comparable.
const gateStageAllocRows = 1 << 14

// MeasureGateStageAllocs runs the gate-stage query over a fixed-size
// table at one worker (the deterministic serial path) and reports mean
// wall time and allocations per execution. encodings selects the
// storage tier under measurement ("on" is the default configuration,
// "off" the plain typed vectors).
func MeasureGateStageAllocs(encodings string) (*GateStageAllocBench, error) {
	db, err := gateStageDB(gateStageAllocRows, sqlengine.Config{Parallelism: 1, Encodings: encodings})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	run := func() error {
		rs, err := db.Query(gateStageSQL)
		if err != nil {
			return err
		}
		rs.Close()
		return nil
	}
	if err := run(); err != nil { // warm up caches and table freeze
		return nil, err
	}
	const iters = 5
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := run(); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return &GateStageAllocBench{
		Rows:        gateStageAllocRows,
		Workers:     1,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / iters,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / iters,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / iters,
	}, nil
}

// engineWorkloads are the circuit families exercised by the engine
// benchmark.
func engineWorkloads(quick bool) []struct {
	name  string
	n     int
	build func(int) *quantum.Circuit
} {
	ghz, qft, par := 16, 10, 12
	if quick {
		ghz, qft, par = 8, 6, 6
	}
	return []struct {
		name  string
		n     int
		build func(int) *quantum.Circuit
	}{
		{"ghz", ghz, circuits.GHZ},
		{"qft", qft, circuits.QFT},
		{"parity", par, circuits.ParitySuperposition},
	}
}

// RunEngineBench executes the engine workloads through the SQL backend
// and returns the throughput report.
func RunEngineBench(opts Options) (*EngineBenchReport, error) {
	report := &EngineBenchReport{Engine: "vectorized-batch", Storage: "columnar", BatchSize: sqlengine.BatchSize}
	gs, err := MeasureGateStageAllocs("on")
	if err != nil {
		return nil, fmt.Errorf("bench: sqlengine gate-stage allocs: %w", err)
	}
	report.GateStage = gs
	plain, err := MeasureGateStageAllocs("off")
	if err != nil {
		return nil, fmt.Errorf("bench: sqlengine gate-stage allocs (plain): %w", err)
	}
	report.GateStagePlain = plain
	for _, w := range engineWorkloads(opts.Quick) {
		c := w.build(w.n)
		var res *sim.Result
		var before, after runtime.MemStats
		runs := 0 // counted in the closure so the divisor tracks Median3's iteration count
		runtime.GC()
		runtime.ReadMemStats(&before)
		wall, err := Median3(func() (time.Duration, error) {
			runs++
			r, err := (&sim.SQL{SpillDir: opts.SpillDir}).Run(c)
			if err != nil {
				return 0, err
			}
			res = r
			return r.Stats.WallTime, nil
		})
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("bench: sqlengine workload %s: %w", w.name, err)
		}
		secs := wall.Seconds()
		entry := EngineBenchEntry{
			Workload:      w.name,
			Qubits:        c.NumQubits(),
			Gates:         res.Stats.GateCount,
			WallSeconds:   secs,
			MaxRows:       res.Stats.MaxIntermediateSize,
			SpilledRows:   res.Stats.SpilledRows,
			FinalNonzeros: res.Stats.FinalNonzeros,
			AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(runs),
		}
		if secs > 0 {
			entry.GateRowsPerSec = float64(res.Stats.GateCount) * float64(res.Stats.MaxIntermediateSize) / secs
		}
		report.Entries = append(report.Entries, entry)
	}
	return report, nil
}

// EngineBenchJSON renders the report for BENCH_sqlengine.json.
func EngineBenchJSON(opts Options) ([]byte, error) {
	report, err := RunEngineBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// AllocGateTolerance is how far above the committed baseline the
// gate-stage allocs/op may drift before the CI allocation gate fails.
const AllocGateTolerance = 1.20

// CompareAllocGate reads two BENCH_sqlengine.json reports and fails
// when the new run's fixed-size gate-stage allocs/op exceed the
// baseline by more than AllocGateTolerance. It is the allocation
// regression gate run by CI after every push.
func CompareAllocGate(baselinePath, newPath string) error {
	load := func(path string) (*EngineBenchReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r EngineBenchReport
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if r.GateStage == nil {
			return nil, fmt.Errorf("%s: no gate_stage section (regenerate with qybench -benchjson)", path)
		}
		return &r, nil
	}
	base, err := load(baselinePath)
	if err != nil {
		return err
	}
	cur, err := load(newPath)
	if err != nil {
		return err
	}
	check := func(name string, base, cur *GateStageAllocBench) error {
		if base.Rows != cur.Rows {
			return fmt.Errorf("alloc gate: incomparable sizes: baseline rows=%d vs new rows=%d", base.Rows, cur.Rows)
		}
		limit := base.AllocsPerOp * AllocGateTolerance
		fmt.Printf("alloc gate: gate-stage query [%s] (%d rows): baseline %.0f allocs/op, new %.0f allocs/op (limit %.0f)\n",
			name, base.Rows, base.AllocsPerOp, cur.AllocsPerOp, limit)
		if cur.AllocsPerOp > limit {
			return fmt.Errorf("alloc gate FAILED [%s]: %.0f allocs/op exceeds baseline %.0f by more than %.0f%%",
				name, cur.AllocsPerOp, base.AllocsPerOp, (AllocGateTolerance-1)*100)
		}
		return nil
	}
	if err := check("encoded", base.GateStage, cur.GateStage); err != nil {
		return err
	}
	// The plain-vector path is gated too when both reports measured it
	// (baselines predating the split only carry the default section).
	if base.GateStagePlain != nil && cur.GateStagePlain != nil {
		return check("plain", base.GateStagePlain, cur.GateStagePlain)
	}
	return nil
}

func runSQLEngine(opts Options) ([]*Table, error) {
	report, err := RunEngineBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("SQL engine throughput (vectorized batch executor, columnar storage)",
		"workload", "qubits", "gates", "wall", "max rows", "gate-rows/s", "spilled rows", "allocs/op")
	for _, e := range report.Entries {
		t.Addf(e.Workload, e.Qubits, e.Gates,
			FormatDuration(time.Duration(e.WallSeconds*float64(time.Second))),
			e.MaxRows, fmt.Sprintf("%.3g", e.GateRowsPerSec), e.SpilledRows,
			fmt.Sprintf("%.0f", e.AllocsPerOp))
	}
	t.Note("batch=%d storage=%s; gate-rows/s = gates x max intermediate rows / wall time", report.BatchSize, report.Storage)
	if gs := report.GateStage; gs != nil {
		t.Note("gate-stage alloc gate: rows=%d allocs/op=%.0f bytes/op=%.0f ns/op=%.0f (CI fails >20%% over baseline)",
			gs.Rows, gs.AllocsPerOp, gs.BytesPerOp, gs.NsPerOp)
	}
	return []*Table{t}, nil
}
