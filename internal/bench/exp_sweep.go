package bench

import (
	"fmt"
	"math"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "sweep",
		Paper: "§3.3 'Parameterized Simulations'",
		Desc:  "a parameterized circuit family swept over a rotation angle, executed on every backend",
		Run:   runSweep,
	})
}

func runSweep(opts Options) ([]*Table, error) {
	n, layers, steps := 6, 2, 8
	if opts.Quick {
		n, layers, steps = 4, 1, 4
	}

	family := func(theta float64) *quantum.Circuit {
		params := make([]float64, n*layers*2)
		for i := range params {
			params[i] = theta * (1 + 0.1*float64(i%5))
		}
		c := circuits.HardwareEfficientAnsatz(n, layers, params)
		c.SetName(fmt.Sprintf("ansatz-%d-%d(θ=%.3f)", n, layers, theta))
		return c
	}

	// Observable: probability that qubit 0 measures 1.
	t := NewTable(fmt.Sprintf("Parameter sweep — hardware-efficient ansatz n=%d, %d layers, %d θ steps", n, layers, steps),
		"θ", "P(q0=1) statevec", "P(q0=1) sql", "P(q0=1) mps", "P(q0=1) dd", "max |Δ|")
	backends := []sim.Backend{
		&sim.StateVector{},
		&sim.SQL{SpillDir: opts.SpillDir},
		&sim.MPS{},
		&sim.DD{},
	}
	totals := make([]time.Duration, len(backends))
	for s := 0; s < steps; s++ {
		theta := (float64(s) + 0.5) * math.Pi / float64(steps)
		c := family(theta)
		probs := make([]float64, len(backends))
		for i, b := range backends {
			res, err := b.Run(c)
			if err != nil {
				return nil, fmt.Errorf("%s at θ=%.3f: %w", b.Name(), theta, err)
			}
			probs[i] = res.State.QubitProbability(0)
			totals[i] += res.Stats.WallTime
		}
		maxDelta := 0.0
		for _, p := range probs[1:] {
			if d := math.Abs(p - probs[0]); d > maxDelta {
				maxDelta = d
			}
		}
		t.Addf(fmt.Sprintf("%.3f", theta),
			fmt.Sprintf("%.6f", probs[0]), fmt.Sprintf("%.6f", probs[1]),
			fmt.Sprintf("%.6f", probs[2]), fmt.Sprintf("%.6f", probs[3]),
			fmt.Sprintf("%.2e", maxDelta))
	}

	tt := NewTable("Parameter sweep — total backend time across the family",
		"backend", "total time", "per instance")
	for i, b := range backends {
		tt.Addf(b.Name(), FormatDuration(totals[i]), FormatDuration(totals[i]/time.Duration(steps)))
	}
	return []*Table{t, tt}, nil
}
