package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "parity",
		Paper: "§4 'Quantum Algorithm Design and Testing' — parity check",
		Desc:  "parity-check circuit: SQL-backend correctness against classical parity on all/random inputs, plus timing vs statevector",
		Run:   runParity,
	})
}

func runParity(opts Options) ([]*Table, error) {
	sizes := []int{2, 4, 8, 12}
	if opts.Quick {
		sizes = []int{2, 4}
	}
	rng := rand.New(rand.NewSource(2025))

	correct := NewTable("Parity check — SQL backend vs classical parity",
		"data qubits", "inputs tested", "mismatches", "check")
	timing := NewTable("Parity check — runtime (superposition input, all 2^k inputs at once)",
		"data qubits", "statevector", "sql", "sql rows")

	for _, k := range sizes {
		// Correctness: exhaustive for small k, 16 random inputs beyond.
		var inputs [][]bool
		if k <= 6 {
			for x := 0; x < 1<<k; x++ {
				bits := make([]bool, k)
				for q := 0; q < k; q++ {
					bits[q] = x>>q&1 == 1
				}
				inputs = append(inputs, bits)
			}
		} else {
			for i := 0; i < 16; i++ {
				bits := make([]bool, k)
				for q := range bits {
					bits[q] = rng.Intn(2) == 1
				}
				inputs = append(inputs, bits)
			}
		}
		mismatches := 0
		for _, bits := range inputs {
			want := 0
			for _, b := range bits {
				if b {
					want ^= 1
				}
			}
			res, err := (&sim.SQL{SpillDir: opts.SpillDir}).Run(circuits.ParityCheck(bits))
			if err != nil {
				return nil, err
			}
			got := res.State.QubitProbability(k)
			if math.Abs(got-float64(want)) > 1e-9 {
				mismatches++
			}
		}
		correct.Addf(k, len(inputs), mismatches, verdict(mismatches == 0))

		// Timing on the superposition variant (all inputs at once).
		c := circuits.ParitySuperposition(k)
		var svT, sqlT time.Duration
		var sqlRows int64
		var err error
		svT, err = Median3(func() (time.Duration, error) {
			res, err := (&sim.StateVector{}).Run(c)
			if err != nil {
				return 0, err
			}
			return res.Stats.WallTime, nil
		})
		if err != nil {
			return nil, err
		}
		sqlT, err = Median3(func() (time.Duration, error) {
			res, err := (&sim.SQL{SpillDir: opts.SpillDir}).Run(c)
			if err != nil {
				return 0, err
			}
			sqlRows = res.Stats.MaxIntermediateSize
			return res.Stats.WallTime, nil
		})
		if err != nil {
			return nil, err
		}
		timing.Addf(k, FormatDuration(svT), FormatDuration(sqlT), fmt.Sprint(sqlRows))
	}
	return []*Table{correct, timing}, nil
}
