package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "kernel",
		Paper: "compiled gate-stage kernels — fused scan⋈join⋈agg⋈project loop vs the interpreted batch executor",
		Desc:  "cached gate-stage query (the parameter-sweep hot path) and circuit simulations with the kernel tier on and off, asserting bit-identical amplitudes; qybench -benchjson BENCH_sqlengine_kernel.json writes the machine-readable report",
		Run:   runKernelBench,
	})
}

// KernelBenchEntry is one workload measured with the kernel tier off
// and on.
type KernelBenchEntry struct {
	Workload   string  `json:"workload"`
	SecondsOff float64 `json:"seconds_kernel_off"`
	SecondsOn  float64 `json:"seconds_kernel_on"`
	// Speedup is off/on wall time (> 1 means the kernel won).
	Speedup float64 `json:"speedup"`
	// BitIdentical reports whether the on and off runs produced
	// bitwise-identical results (exact value types, int64 values, and
	// float64 bit patterns, in the same row order).
	BitIdentical bool   `json:"bit_identical"`
	Rows         int64  `json:"rows,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	Digest       string `json:"digest,omitempty"`
}

// KernelBenchReport is the BENCH_sqlengine_kernel.json payload.
type KernelBenchReport struct {
	Engine     string `json:"engine"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SweepSpeedup is the headline number: the cached gate-stage query
	// (kernel compiled once, then reused — the parameter-sweep hot
	// path) with kernels on vs off. The CI gate asserts > 1.
	SweepSpeedup float64 `json:"sweep_speedup"`
	// BitIdentical aggregates every workload's flag (the acceptance
	// gate: throughput may change, amplitude bits may not).
	BitIdentical bool `json:"bit_identical"`
	// KernelCounters is the delta of the engine's kernel-tier counters
	// across the kernels-on runs (compiles, cache_hits, executions,
	// fallbacks, fallback_<reason>).
	KernelCounters map[string]int64   `json:"kernel_counters"`
	Entries        []KernelBenchEntry `json:"entries"`
}

// timedCachedQuery times the steady-state cached path: one warm-up
// execution (which compiles and caches the kernel), then a Median3
// measurement of repeated runs, then a digest of a final run.
func timedCachedQuery(db *sqlengine.DB, sql string, reps int) (time.Duration, string, int64, error) {
	rs, err := db.Query(sql)
	if err != nil {
		return 0, "", 0, err
	}
	rs.Close()
	wall, err := Median3(func() (time.Duration, error) {
		start := time.Now()
		for r := 0; r < reps; r++ {
			rs, err := db.Query(sql)
			if err != nil {
				return 0, err
			}
			rs.Close()
		}
		return time.Since(start), nil
	})
	if err != nil {
		return 0, "", 0, err
	}
	rs, err = db.Query(sql)
	if err != nil {
		return 0, "", 0, err
	}
	defer rs.Close()
	digest, rows, err := resultDigest(rs)
	return wall / time.Duration(reps), digest, rows, err
}

// kernelGateStageEntry measures the cached gate-stage query off vs on
// at the given worker count.
func kernelGateStageEntry(name string, stateRows, workers, reps int) (KernelBenchEntry, error) {
	entry := KernelBenchEntry{Workload: name, Workers: workers}
	var digests [2]string
	for i, kernels := range []string{"off", "on"} {
		db, err := gateStageDB(stateRows, sqlengine.Config{Parallelism: workers, Kernels: kernels})
		if err != nil {
			return entry, fmt.Errorf("bench: kernel %s: %w", name, err)
		}
		wall, digest, rows, err := timedCachedQuery(db, gateStageSQL, reps)
		db.Close()
		if err != nil {
			return entry, fmt.Errorf("bench: kernel %s (%s): %w", name, kernels, err)
		}
		digests[i] = digest
		entry.Rows = rows
		if kernels == "off" {
			entry.SecondsOff = wall.Seconds()
		} else {
			entry.SecondsOn = wall.Seconds()
		}
	}
	entry.BitIdentical = digests[0] == digests[1]
	entry.Digest = digests[1]
	if entry.SecondsOn > 0 {
		entry.Speedup = entry.SecondsOff / entry.SecondsOn
	}
	return entry, nil
}

// RunKernelBench measures every workload with the kernel tier off and
// on and returns the report.
func RunKernelBench(opts Options) (*KernelBenchReport, error) {
	report := &KernelBenchReport{
		Engine:       "vectorized-batch/compiled-gate-kernels",
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BitIdentical: true,
	}
	before := sqlengine.KernelCounters()

	stateRows, reps := 1<<17, 5
	ghzQubits, qftQubits, parityQubits := 16, 10, 15
	if opts.Quick {
		stateRows, reps = 1<<14, 3
		ghzQubits, qftQubits, parityQubits = 8, 6, 9
	}

	// 1. The headline: the cached gate-stage query on the serial path —
	// exactly what a parameter sweep executes per gate after the first
	// point (plan cached, kernel compiled).
	sweep, err := kernelGateStageEntry("gate_stage_cached_sweep", stateRows, 1, reps)
	if err != nil {
		return nil, err
	}
	report.SweepSpeedup = sweep.Speedup
	entries := []KernelBenchEntry{sweep}

	// 2. The morsel-parallel path: the kernel's two-phase deterministic
	// accumulation vs the interpreted parallel aggregation.
	par, err := kernelGateStageEntry("gate_stage_parallel", stateRows, 4, reps)
	if err != nil {
		return nil, err
	}
	entries = append(entries, par)

	// 3. Full simulations through the SQL backend (translation, setup,
	// and output layers dilute the kernel's share of the wall time).
	for _, wl := range simCircuits(ghzQubits, qftQubits, parityQubits) {
		entry := KernelBenchEntry{Workload: wl.name}
		var digests [2]string
		for i, kernels := range []string{"off", "on"} {
			cache := sim.NewPlanCache(0)
			var res *sim.Result
			wall, err := Median3(func() (time.Duration, error) {
				r, err := (&sim.SQL{Kernels: kernels, Cache: cache, SpillDir: opts.SpillDir}).Run(wl.c)
				if err != nil {
					return 0, err
				}
				res = r
				return r.Stats.WallTime, nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: kernel %s (%s): %w", wl.name, kernels, err)
			}
			digests[i] = stateDigest(res.State)
			entry.Rows = int64(res.State.Len())
			if kernels == "off" {
				entry.SecondsOff = wall.Seconds()
			} else {
				entry.SecondsOn = wall.Seconds()
			}
		}
		entry.BitIdentical = digests[0] == digests[1]
		entry.Digest = digests[1]
		if entry.SecondsOn > 0 {
			entry.Speedup = entry.SecondsOff / entry.SecondsOn
		}
		entries = append(entries, entry)
	}

	after := sqlengine.KernelCounters()
	report.KernelCounters = map[string]int64{}
	for k, v := range after {
		if d := v - before[k]; d > 0 {
			report.KernelCounters[k] = d
		}
	}
	for _, e := range entries {
		report.BitIdentical = report.BitIdentical && e.BitIdentical
	}
	report.Entries = entries
	return report, nil
}

// KernelBenchJSON renders the report for BENCH_sqlengine_kernel.json.
func KernelBenchJSON(opts Options) ([]byte, error) {
	report, err := RunKernelBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func runKernelBench(opts Options) ([]*Table, error) {
	report, err := RunKernelBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("Compiled gate-stage kernels: fused loop on vs off",
		"workload", "off", "on", "speedup", "bit-identical", "rows")
	for _, e := range report.Entries {
		t.Addf(e.Workload,
			FormatDuration(time.Duration(e.SecondsOff*float64(time.Second))),
			FormatDuration(time.Duration(e.SecondsOn*float64(time.Second))),
			fmt.Sprintf("%.2fx", e.Speedup), e.BitIdentical, e.Rows)
	}
	t.Note("kernel counters during the kernels-on runs: %v", report.KernelCounters)
	t.Note("bit-identical = kernel on/off results match exactly (types, int64 values, float64 bit patterns, row order)")
	return []*Table{t}, nil
}
