package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "sqlengine_parallel",
		Paper: "morsel-parallel scaling — gate-stage query and circuit workloads at 1/2/4/8 workers",
		Desc:  "per-worker-count wall time and speedup for the morsel-driven executor, plus a bit-identity check on simulated amplitudes; qybench -benchjson BENCH_sqlengine_parallel.json writes the machine-readable report",
		Run:   runSQLEngineParallel,
	})
}

// parallelWorkerCounts are the Parallelism settings the scaling sweep
// measures.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelBenchEntry is one (workload, worker count, storage layout)
// measurement. Layout is omitted for the default columnar store.
type ParallelBenchEntry struct {
	Workload    string  `json:"workload"`
	Workers     int     `json:"workers"`
	Layout      string  `json:"layout,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is this entry's wall time relative to the same workload at
	// one worker (1.0 for the baseline itself).
	Speedup float64 `json:"speedup_vs_1_worker"`
	// StateDigest fingerprints the simulated amplitudes (FNV-64a over
	// the sorted basis indices and the exact float64 bits of each
	// amplitude); identical digests mean bit-identical states.
	StateDigest string `json:"state_digest,omitempty"`
	Rows        int64  `json:"rows,omitempty"`
}

// ParallelBenchReport is the BENCH_sqlengine_parallel.json payload.
type ParallelBenchReport struct {
	Engine     string `json:"engine"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	BatchSize  int    `json:"batch_size"`
	MorselRows int    `json:"morsel_rows"`
	// StorageFormats lists the table-store layouts the bit-identity
	// sweep covers (the columnar default plus the legacy row store).
	StorageFormats []string `json:"storage_formats"`
	// AmplitudesBitIdentical reports whether every circuit workload
	// produced the same state digest at every worker count and on every
	// storage format.
	AmplitudesBitIdentical bool                 `json:"amplitudes_bit_identical"`
	Entries                []ParallelBenchEntry `json:"entries"`
}

// gateStageDB builds a synthetic nonzero-amplitude table of the given
// size plus a 4-row Hadamard gate table, the exact shape of one
// translated gate application.
func gateStageDB(rows int, cfg sqlengine.Config) (*sqlengine.DB, error) {
	db, err := sqlengine.Open(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		db.Close()
		return nil, err
	}
	batch := make([]string, 0, 500)
	for k := 0; k < rows; k++ {
		batch = append(batch, fmt.Sprintf("(%d, %g, 0.0)", k, 1.0/float64(rows)))
		if len(batch) == 500 || k == rows-1 {
			if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
				db.Close()
				return nil, err
			}
			batch = batch[:0]
		}
	}
	if _, err := db.Exec("CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		db.Close()
		return nil, err
	}
	if _, err := db.Exec("INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

const gateStageSQL = `SELECT ((t.s & ~1) | h.out_s) AS s,
       SUM((t.r * h.r) - (t.i * h.i)) AS r,
       SUM((t.r * h.i) + (t.i * h.r)) AS i
FROM t JOIN h ON h.in_s = (t.s & 1)
GROUP BY ((t.s & ~1) | h.out_s)`

// stateDigest fingerprints a sparse state exactly: sorted basis indices
// with the raw IEEE-754 bits of each amplitude component.
func stateDigest(st *quantum.State) string {
	idx := st.Indices()
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range idx {
		a := st.Amplitude(s)
		put(s)
		put(math.Float64bits(real(a)))
		put(math.Float64bits(imag(a)))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunParallelBench measures the scaling sweep and returns the report.
func RunParallelBench(opts Options) (*ParallelBenchReport, error) {
	report := &ParallelBenchReport{
		Engine:                 "vectorized-batch/morsel-parallel",
		NumCPU:                 runtime.NumCPU(),
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		BatchSize:              sqlengine.BatchSize,
		MorselRows:             sqlengine.MorselRows,
		StorageFormats:         []string{sqlengine.LayoutColumnar, sqlengine.LayoutRow},
		AmplitudesBitIdentical: true,
	}

	// Direct gate-stage query over a synthetic amplitude table.
	stateRows := 1 << 17
	if opts.Quick {
		stateRows = 1 << 14
	}
	var baseline float64
	for _, w := range parallelWorkerCounts {
		db, err := gateStageDB(stateRows, sqlengine.Config{Parallelism: w})
		if err != nil {
			return nil, fmt.Errorf("bench: sqlengine_parallel: %w", err)
		}
		var rows int64
		wall, err := Median3(func() (time.Duration, error) {
			start := time.Now()
			rs, err := db.Query(gateStageSQL)
			if err != nil {
				return 0, err
			}
			rows = rs.Len()
			rs.Close()
			return time.Since(start), nil
		})
		db.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: sqlengine_parallel: gate_stage workers=%d: %w", w, err)
		}
		secs := wall.Seconds()
		if w == parallelWorkerCounts[0] {
			baseline = secs
		}
		e := ParallelBenchEntry{Workload: "gate_stage", Workers: w, WallSeconds: secs, Rows: rows}
		if secs > 0 {
			e.Speedup = baseline / secs
		}
		report.Entries = append(report.Entries, e)
	}

	// Full circuit simulations through the SQL backend, with the state
	// digest proving bit-identity across worker counts.
	ghz, qft := 16, 10
	if opts.Quick {
		ghz, qft = 8, 6
	}
	circuitWorkloads := []struct {
		name string
		c    *quantum.Circuit
	}{
		{"ghz", circuits.GHZ(ghz)},
		{"qft", circuits.QFT(qft)},
	}
	for _, wl := range circuitWorkloads {
		var baseline float64
		var baseDigest string
		for _, w := range parallelWorkerCounts {
			var res *sim.Result
			wall, err := Median3(func() (time.Duration, error) {
				r, err := (&sim.SQL{SpillDir: opts.SpillDir, Parallelism: w}).Run(wl.c)
				if err != nil {
					return 0, err
				}
				res = r
				return r.Stats.WallTime, nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: sqlengine_parallel: %s workers=%d: %w", wl.name, w, err)
			}
			digest := stateDigest(res.State)
			if w == parallelWorkerCounts[0] {
				baseline = wall.Seconds()
				baseDigest = digest
			} else if digest != baseDigest {
				report.AmplitudesBitIdentical = false
			}
			e := ParallelBenchEntry{Workload: wl.name, Workers: w, WallSeconds: wall.Seconds(), StateDigest: digest}
			if wall.Seconds() > 0 {
				e.Speedup = baseline / wall.Seconds()
			}
			report.Entries = append(report.Entries, e)
		}
		// Storage-format sweep: the legacy row layout at one and four
		// workers must reproduce the same digest bit-for-bit.
		for _, w := range []int{1, 4} {
			var res *sim.Result
			wall, err := Median3(func() (time.Duration, error) {
				r, err := (&sim.SQL{SpillDir: opts.SpillDir, Parallelism: w, Layout: sqlengine.LayoutRow}).Run(wl.c)
				if err != nil {
					return 0, err
				}
				res = r
				return r.Stats.WallTime, nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: sqlengine_parallel: %s layout=row workers=%d: %w", wl.name, w, err)
			}
			digest := stateDigest(res.State)
			if digest != baseDigest {
				report.AmplitudesBitIdentical = false
			}
			e := ParallelBenchEntry{Workload: wl.name, Workers: w, Layout: sqlengine.LayoutRow, WallSeconds: wall.Seconds(), StateDigest: digest}
			if wall.Seconds() > 0 {
				e.Speedup = baseline / wall.Seconds()
			}
			report.Entries = append(report.Entries, e)
		}
	}
	return report, nil
}

// ParallelBenchJSON renders the report for BENCH_sqlengine_parallel.json.
func ParallelBenchJSON(opts Options) ([]byte, error) {
	report, err := RunParallelBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func runSQLEngineParallel(opts Options) ([]*Table, error) {
	report, err := RunParallelBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("SQL engine morsel-parallel scaling",
		"workload", "layout", "workers", "wall", "speedup vs 1", "state digest")
	for _, e := range report.Entries {
		layout := e.Layout
		if layout == "" {
			layout = sqlengine.LayoutColumnar
		}
		t.Addf(e.Workload, layout, e.Workers,
			FormatDuration(time.Duration(e.WallSeconds*float64(time.Second))),
			fmt.Sprintf("%.2fx", e.Speedup), e.StateDigest)
	}
	t.Note("num_cpu=%d gomaxprocs=%d morsel=%d rows; amplitudes bit-identical across worker counts and storage formats (%s): %v",
		report.NumCPU, report.GOMAXPROCS, report.MorselRows, strings.Join(report.StorageFormats, "/"), report.AmplitudesBitIdentical)
	return []*Table{t}, nil
}
