package bench

import (
	"fmt"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "prelim",
		Paper: "§1 preliminary experiment (tech-report Fig. 10): memory-capped max qubits, sparse vs dense",
		Desc:  "largest simulable register per backend under a memory cap; RDBMS wins on sparse circuits, loses slightly on dense",
		Run:   runPrelim,
	})
}

func runPrelim(opts Options) ([]*Table, error) {
	budgets := []int64{64 << 10, 256 << 10, 1 << 20}
	maxSparse, maxDense := 62, 16
	if opts.Quick {
		budgets = []int64{64 << 10}
		maxSparse, maxDense = 40, 12
	}

	sparseBuild := func(n int) *quantum.Circuit { return circuits.GHZ(n) }
	denseBuild := func(n int) *quantum.Circuit { return circuits.EqualSuperposition(n) }

	mk := func(budget int64) map[string]func() sim.Backend {
		return map[string]func() sim.Backend{
			"statevector": func() sim.Backend { return &sim.StateVector{MemoryBudget: budget} },
			"sparse":      func() sim.Backend { return &sim.Sparse{MemoryBudget: budget} },
			"sql (in-memory)": func() sim.Backend {
				return &sim.SQL{MemoryBudget: budget, DisableSpill: true}
			},
			"sql (out-of-core)": func() sim.Backend {
				return &sim.SQL{MemoryBudget: budget, SpillDir: opts.SpillDir}
			},
		}
	}
	order := []string{"statevector", "sparse", "sql (in-memory)", "sql (out-of-core)"}

	var tables []*Table
	for kindIdx, kind := range []string{"sparse (GHZ)", "dense (equal superposition)"} {
		build := sparseBuild
		maxN := maxSparse
		if kindIdx == 1 {
			build = denseBuild
			maxN = maxDense
		}
		t := NewTable(fmt.Sprintf("Preliminary experiment — %s circuits: max qubits under memory cap", kind),
			"memory cap", "statevector", "sparse", "sql (in-memory)", "sql (out-of-core)", "sql/statevec ratio")
		for _, budget := range budgets {
			backends := mk(budget)
			vals := map[string]int{}
			for _, name := range order {
				n, err := MaxQubits(build, backends[name], 2, maxN)
				if err != nil {
					return nil, fmt.Errorf("%s under %s: %w", name, FormatBytes(budget), err)
				}
				vals[name] = n
			}
			ratio := "n/a"
			if vals["statevector"] > 0 {
				ratio = fmt.Sprintf("%.1fx", float64(vals["sql (out-of-core)"])/float64(vals["statevector"]))
			}
			t.Addf(FormatBytes(budget),
				capStr(vals["statevector"], maxN), capStr(vals["sparse"], maxN),
				capStr(vals["sql (in-memory)"], maxN), capStr(vals["sql (out-of-core)"], maxN), ratio)
		}
		if kindIdx == 0 {
			t.Note("sparse entries marked '>=' hit the probe ceiling (the engine's 63-bit state index), not a memory limit; the paper reports up to 3118x on its testbed where the index width is not the binding constraint")
		} else {
			t.Note("on dense circuits the relational representation stores all 2^n rows, so its capacity tracks the cap like the dense vector (with constant-factor overhead); out-of-core trades the cap for disk")
		}
		tables = append(tables, t)
	}

	// Dense-circuit runtime comparison at a size every backend fits:
	// the paper reports the RDBMS ~14% slower on dense circuits.
	n := 10
	if opts.Quick {
		n = 8
	}
	c := circuits.EqualSuperposition(n)
	rt := NewTable(fmt.Sprintf("Preliminary experiment — dense runtime at n=%d (no cap)", n),
		"backend", "median time", "peak memory", "final rows")
	for _, mkB := range []func() sim.Backend{
		func() sim.Backend { return &sim.StateVector{} },
		func() sim.Backend { return &sim.Sparse{} },
		func() sim.Backend { return &sim.SQL{SpillDir: opts.SpillDir} },
	} {
		var stats sim.Stats
		med, err := Median3(func() (time.Duration, error) {
			res, err := mkB().Run(c)
			if err != nil {
				return 0, err
			}
			stats = res.Stats
			return res.Stats.WallTime, nil
		})
		if err != nil {
			return nil, err
		}
		rt.Addf(stats.Backend, FormatDuration(med), FormatBytes(stats.PeakBytes), stats.FinalNonzeros)
	}
	rt.Note("shape check: statevector fastest on dense circuits; the SQL pipeline pays per-stage join+aggregation overhead (the paper reports ~14%% on its optimized engines; an interpreted volcano engine pays more)")
	tables = append(tables, rt)
	return tables, nil
}

// capStr annotates values that reached the probe ceiling.
func capStr(n, ceiling int) string {
	if n >= ceiling {
		return fmt.Sprintf(">=%d", n)
	}
	return fmt.Sprint(n)
}
