package bench

import (
	"fmt"
	"math"

	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Paper: "Fig. 2 (running example)",
		Desc:  "3-qubit GHZ translation: gate tables, per-gate queries, intermediate states T1-T3",
		Run:   runFig2,
	})
}

func runFig2(opts Options) ([]*Table, error) {
	c := circuits.GHZ(3)
	tr, err := core.Translate(c, nil, core.Options{Mode: core.MaterializedChain})
	if err != nil {
		return nil, err
	}

	var tables []*Table

	// Fig. 2b: the relational gate tables.
	for _, gt := range tr.GateTables {
		t := NewTable(fmt.Sprintf("Fig.2b gate table %s", gt.Name), "in_s", "out_s", "r", "i")
		for _, row := range gt.Rows {
			t.Addf(row.InS, row.OutS, row.R, row.I)
		}
		tables = append(tables, t)
	}

	// Fig. 2c: the per-gate queries.
	qt := NewTable("Fig.2c generated queries", "stage", "state table", "gate", "query")
	for i, st := range tr.Steps {
		qt.Addf(fmt.Sprintf("q%d", i+1), st.Table, st.GateTable, compactSQL(st.Body))
	}
	tables = append(tables, qt)

	// Execute and dump every intermediate state.
	db, err := sqlengine.Open(sqlengine.Config{SpillDir: opts.SpillDir})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	for _, stmt := range tr.Statements() {
		if _, err := db.Exec(stmt); err != nil {
			return nil, err
		}
	}
	states := NewTable("Fig.2 intermediate and final states", "table", "s", "r", "i")
	for _, name := range []string{"T0", "T1", "T2", "T3"} {
		rs, err := db.Query("SELECT s, r, i FROM " + name + " ORDER BY s")
		if err != nil {
			return nil, err
		}
		rows, err := rs.All()
		rs.Close()
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			states.Addf(name, row[0].String(), row[1].String(), row[2].String())
		}
	}

	// Verify against the paper's expected output: T3 = {0, 7} at 1/√2.
	rs, err := db.Query(tr.Query)
	if err != nil {
		return nil, err
	}
	rows, err := rs.All()
	rs.Close()
	if err != nil {
		return nil, err
	}
	inv := 1 / math.Sqrt2
	ok := len(rows) == 2
	if ok {
		for i, want := range []int64{0, 7} {
			s, _ := rows[i][0].AsInt()
			r, _ := rows[i][1].AsFloat()
			if s != want || math.Abs(r-inv) > 1e-12 {
				ok = false
			}
		}
	}
	states.Note("final state check (s∈{0,7}, r=1/√2): %v", verdict(ok))
	tables = append(tables, states)
	return tables, nil
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// compactSQL collapses whitespace so queries fit table cells.
func compactSQL(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' || c == ' ' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, c)
	}
	return string(out)
}
