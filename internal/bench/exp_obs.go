package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/obs"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "obs",
		Paper: "observability overhead — span tracing off / sampled / full on the gate-stage hot path",
		Desc:  "times the cached gate-stage query with tracing compiled out, enabled-but-untraced, sampled, and full, asserting bit-identical results and near-zero untraced overhead; a traced SQL-backend simulation checks the span tree reaches translate/stages/query/emit; qybench -benchjson BENCH_sqlengine_obs.json writes the machine-readable report",
		Run:   runObsBench,
	})
}

// ObsBenchEntry is the cached gate-stage query timed under one tracing
// mode.
type ObsBenchEntry struct {
	// Mode: "baseline" (engine tracing off), "off" (tracing enabled,
	// no span on the context — the production default), "sampled"
	// (obs.SampleDefault), "full" (every batch timed).
	Mode    string  `json:"mode"`
	Seconds float64 `json:"seconds"`
	// OverheadPct is this mode's wall time vs baseline, in percent.
	OverheadPct float64 `json:"overhead_pct"`
	// BitIdentical: this mode's result digest matches baseline's.
	BitIdentical bool `json:"bit_identical"`
	// Spans counts the spans of one collected trace (0 for untraced
	// modes).
	Spans int `json:"spans"`
}

// ObsBenchReport is the BENCH_sqlengine_obs.json payload.
type ObsBenchReport struct {
	Engine     string `json:"engine"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Rows       int64  `json:"rows"`
	// OverheadOffPct is the headline the CI gate bounds (<= 2%): the
	// cost of shipping with tracing enabled when no trace is requested
	// — one context lookup per statement.
	OverheadOffPct     float64 `json:"overhead_off_pct"`
	OverheadSampledPct float64 `json:"overhead_sampled_pct"`
	OverheadFullPct    float64 `json:"overhead_full_pct"`
	// BitIdentical aggregates every mode's flag plus the traced vs
	// untraced simulation digests (the acceptance gate: tracing may
	// cost time, never bits).
	BitIdentical bool            `json:"bit_identical"`
	Entries      []ObsBenchEntry `json:"entries"`
	// SimSpanNames: the distinct span names collected by a fully traced
	// SQL-backend simulation — proof the trace covers the pipeline.
	SimSpanNames []string `json:"sim_span_names"`
}

// obsRunOnce executes the cached gate-stage query once, with a fresh
// per-query trace when sampleEvery > 0 (the per-job cost a traced
// service request pays).
func obsRunOnce(db *sqlengine.DB, sampleEvery int) (*sqlengine.ResultSet, *obs.Trace, error) {
	ctx := context.Background()
	var tr *obs.Trace
	if sampleEvery > 0 {
		tr = obs.NewTrace("bench", sampleEvery)
		ctx = obs.WithSpan(ctx, tr.Root())
	}
	rs, err := db.QueryContext(ctx, gateStageSQL)
	return rs, tr, err
}

// minDuration returns the smallest sample: for identical workloads the
// minimum is the run least disturbed by scheduler, GC, or thermal noise,
// which is what a 2% overhead bound needs.
func minDuration(ds []time.Duration) time.Duration {
	best := ds[0]
	for _, d := range ds[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

// RunObsBench measures the tracing modes and returns the report.
func RunObsBench(opts Options) (*ObsBenchReport, error) {
	report := &ObsBenchReport{
		Engine:       "vectorized-batch + obs span tracing",
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      1, // serial path: most sensitive to per-batch overhead
		BitIdentical: true,
	}
	stateRows, reps, rounds, qftQubits := 1<<17, 4, 7, 10
	if opts.Quick {
		stateRows, reps, rounds, qftQubits = 1<<14, 4, 7, 6
	}

	modes := []struct {
		name        string
		tracing     string // engine Config.Tracing
		sampleEvery int    // 0 = no span on the context
	}{
		{"baseline", "off", 0},
		{"off", "on", 0},
		{"sampled", "on", obs.SampleDefault},
		{"full", "on", obs.SampleFull},
	}

	// One engine per mode, warmed once (plan + kernel cached), then single
	// queries are timed interleaved round-robin across the modes: adjacent
	// samples of different modes see the same machine conditions, so slow
	// drift (thermal, scheduler, GC) cancels out of the mode-vs-baseline
	// ratio of minimums, which is what makes a 2% overhead bound
	// measurable.
	dbs := make([]*sqlengine.DB, len(modes))
	defer func() {
		for _, db := range dbs {
			if db != nil {
				db.Close()
			}
		}
	}()
	for i, mode := range modes {
		db, err := gateStageDB(stateRows, sqlengine.Config{Parallelism: report.Workers, Tracing: mode.tracing})
		if err != nil {
			return nil, fmt.Errorf("bench: obs %s: %w", mode.name, err)
		}
		dbs[i] = db
		rs, _, err := obsRunOnce(db, mode.sampleEvery)
		if err != nil {
			return nil, fmt.Errorf("bench: obs %s warm-up: %w", mode.name, err)
		}
		rs.Close()
	}
	times := make([][]time.Duration, len(modes))
	for round := 0; round < rounds; round++ {
		for r := 0; r < reps; r++ {
			for i, mode := range modes {
				start := time.Now()
				rs, _, err := obsRunOnce(dbs[i], mode.sampleEvery)
				if err != nil {
					return nil, fmt.Errorf("bench: obs %s: %w", mode.name, err)
				}
				rs.Close()
				times[i] = append(times[i], time.Since(start))
			}
		}
	}

	var baseSeconds float64
	var baseDigest string
	for i, mode := range modes {
		rs, tr, err := obsRunOnce(dbs[i], mode.sampleEvery)
		if err != nil {
			return nil, fmt.Errorf("bench: obs %s: %w", mode.name, err)
		}
		digest, rows, err := resultDigest(rs)
		rs.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: obs %s: %w", mode.name, err)
		}
		spans := 0
		if tr != nil {
			tr.Snapshot().Walk(func(obs.SpanJSON) { spans++ })
		}
		entry := ObsBenchEntry{Mode: mode.name, Seconds: minDuration(times[i]).Seconds(), Spans: spans}
		report.Rows = rows
		if mode.name == "baseline" {
			baseSeconds, baseDigest = entry.Seconds, digest
			entry.BitIdentical = true
		} else {
			entry.BitIdentical = digest == baseDigest
			if baseSeconds > 0 {
				entry.OverheadPct = (entry.Seconds/baseSeconds - 1) * 100
			}
		}
		report.BitIdentical = report.BitIdentical && entry.BitIdentical
		switch mode.name {
		case "off":
			report.OverheadOffPct = entry.OverheadPct
		case "sampled":
			report.OverheadSampledPct = entry.OverheadPct
		case "full":
			report.OverheadFullPct = entry.OverheadPct
		}
		report.Entries = append(report.Entries, entry)
	}

	// A fully traced simulation through the SQL backend: same bits as
	// untraced, and the collected span tree reaches every phase.
	c := circuits.QFT(qftQubits)
	untraced, err := (&sim.SQL{SpillDir: opts.SpillDir}).Run(c)
	if err != nil {
		return nil, fmt.Errorf("bench: obs sim: %w", err)
	}
	tr := obs.NewTrace("bench-sim", obs.SampleFull)
	traced, err := (&sim.SQL{SpillDir: opts.SpillDir}).RunContext(obs.WithSpan(context.Background(), tr.Root()), c)
	if err != nil {
		return nil, fmt.Errorf("bench: obs sim traced: %w", err)
	}
	if stateDigest(untraced.State) != stateDigest(traced.State) {
		report.BitIdentical = false
	}
	seen := map[string]bool{}
	tr.Snapshot().Walk(func(sp obs.SpanJSON) {
		if !seen[sp.Name] {
			seen[sp.Name] = true
			report.SimSpanNames = append(report.SimSpanNames, sp.Name)
		}
	})
	return report, nil
}

// ObsBenchJSON renders the report for BENCH_sqlengine_obs.json.
func ObsBenchJSON(opts Options) ([]byte, error) {
	report, err := RunObsBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ObsGate validates an obs report for CI: tracing must never change
// bits, the enabled-but-untraced mode must cost <= 2%, and the traced
// modes must actually collect spans covering the pipeline.
func ObsGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r ObsBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("obs gate: %s: %w", path, err)
	}
	if !r.BitIdentical {
		return fmt.Errorf("obs gate: %s: tracing changed result bits", path)
	}
	if r.OverheadOffPct > 2.0 {
		return fmt.Errorf("obs gate: %s: tracing-off overhead %.2f%% exceeds 2%%", path, r.OverheadOffPct)
	}
	for _, e := range r.Entries {
		if (e.Mode == "sampled" || e.Mode == "full") && e.Spans == 0 {
			return fmt.Errorf("obs gate: %s: mode %s collected no spans", path, e.Mode)
		}
	}
	for _, want := range []string{"translate", "stages", "query", "emit"} {
		found := false
		for _, name := range r.SimSpanNames {
			if name == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("obs gate: %s: traced simulation has no %q span (have %v)", path, want, r.SimSpanNames)
		}
	}
	return nil
}

func runObsBench(opts Options) ([]*Table, error) {
	report, err := RunObsBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("Span tracing overhead: gate-stage query per mode",
		"mode", "per-query", "overhead", "bit-identical", "spans")
	for _, e := range report.Entries {
		t.Addf(e.Mode,
			FormatDuration(time.Duration(e.Seconds*float64(time.Second))),
			fmt.Sprintf("%+.2f%%", e.OverheadPct), e.BitIdentical, e.Spans)
	}
	t.Note("baseline = engine built with tracing off; off = tracing on but no span on the context (production default)")
	t.Note("traced simulation spans: %v", report.SimSpanNames)
	return []*Table{t}, nil
}
