package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "fusion",
		Paper: "whole-circuit kernel fusion — multi-stage fused execution without intermediate materialization",
		Desc:  "deep gate-stage chains executed interpreted / single-stage kernels / chain-fused, per depth, asserting bit-identical results; qybench -benchjson BENCH_sqlengine_fusion.json writes the machine-readable report",
		Run:   runChainFusionBench,
	})
}

// chainFusionSQL builds a depth-stage chain of translated gate-stage
// CTEs over the gateStageDB schema: each stage applies the 4-row
// Hadamard gate table to bit 0 of the previous stage's amplitudes —
// the exact SQL shape core.Translate emits for a deep circuit in
// single-query mode (and that FusedStatements emits per fused CTAS
// run in materialized-chain mode).
func chainFusionSQL(depth int) string {
	var b strings.Builder
	b.WriteString("WITH ")
	for k := 1; k <= depth; k++ {
		src := fmt.Sprintf("c%d", k-1)
		if k == 1 {
			src = "t"
		}
		if k > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `c%d AS (
SELECT ((%[2]s.s & ~1) | h.out_s) AS s,
       SUM((%[2]s.r * h.r) - (%[2]s.i * h.i)) AS r,
       SUM((%[2]s.r * h.i) + (%[2]s.i * h.r)) AS i
FROM %[2]s JOIN h ON h.in_s = (%[2]s.s & 1)
GROUP BY ((%[2]s.s & ~1) | h.out_s)
)`, k, src)
	}
	fmt.Fprintf(&b, " SELECT s, r, i FROM c%d", depth)
	return b.String()
}

// FusionBenchEntry is one chain depth (or one simulated circuit)
// measured interpreted, with single-stage kernels, and chain-fused.
type FusionBenchEntry struct {
	Workload string `json:"workload"`
	// Stages is the logical chain depth (gate-stage statements in the
	// workload); the fused pass executes stages-1 of them as one kernel
	// chain plus the optimizer-inlined final stage.
	Stages int `json:"stages"`
	// SecondsInterpreted is the batch executor (kernels off).
	SecondsInterpreted float64 `json:"seconds_interpreted"`
	// SecondsKernel is stage-at-a-time compiled kernels (fusion off) —
	// the PR 6 baseline the fused pass is gated against.
	SecondsKernel float64 `json:"seconds_kernel"`
	// SecondsFused is whole-circuit chain fusion (the default config).
	SecondsFused float64 `json:"seconds_fused"`
	// FusedSpeedup is kernel/fused wall time (> 1 = fusion won).
	FusedSpeedup float64 `json:"fused_speedup"`
	// InterpretedSpeedup is interpreted/fused wall time.
	InterpretedSpeedup float64 `json:"interpreted_speedup"`
	// BitIdentical reports whether all three variants produced the same
	// result bits (float64 bit patterns, row order included).
	BitIdentical bool   `json:"bit_identical"`
	Rows         int64  `json:"rows,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	Digest       string `json:"digest,omitempty"`
}

// FusionBenchReport is the BENCH_sqlengine_fusion.json payload.
type FusionBenchReport struct {
	Engine     string `json:"engine"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// FusedSpeedup is the headline number: the deepest cached chain
	// with fusion on vs single-stage kernels. The CI gate asserts > 1.
	FusedSpeedup float64 `json:"fused_speedup"`
	// HeadlineStages is that chain's depth (the gate requires >= 16).
	HeadlineStages int `json:"headline_stages"`
	// BitIdentical aggregates every entry's flag (the acceptance gate:
	// throughput may change, amplitude bits may not).
	BitIdentical bool `json:"bit_identical"`
	// ChainCounters is the delta of the engine's kernel-tier chain
	// counters across the fused runs (chain_executions, chain_stages,
	// chain_elided, fallback_<reason>), proving intermediate stages
	// were actually elided rather than materialized.
	ChainCounters map[string]int64   `json:"chain_counters"`
	Entries       []FusionBenchEntry `json:"entries"`
}

// chainDepthEntry measures one chain depth across the three variants
// on the cached (steady-state) path.
func chainDepthEntry(depth, stateRows, workers, reps int) (FusionBenchEntry, error) {
	entry := FusionBenchEntry{
		Workload: fmt.Sprintf("gate_chain_depth_%d", depth),
		Stages:   depth,
		Workers:  workers,
	}
	sql := chainFusionSQL(depth)
	variants := []struct {
		name string
		cfg  sqlengine.Config
	}{
		{"interpreted", sqlengine.Config{Parallelism: workers, Kernels: "off"}},
		{"kernel", sqlengine.Config{Parallelism: workers, Fusion: "off"}},
		{"fused", sqlengine.Config{Parallelism: workers}},
	}
	var digests [3]string
	for i, v := range variants {
		db, err := gateStageDB(stateRows, v.cfg)
		if err != nil {
			return entry, fmt.Errorf("bench: fusion depth %d: %w", depth, err)
		}
		wall, digest, rows, err := timedCachedQuery(db, sql, reps)
		db.Close()
		if err != nil {
			return entry, fmt.Errorf("bench: fusion depth %d (%s): %w", depth, v.name, err)
		}
		digests[i] = digest
		entry.Rows = rows
		switch v.name {
		case "interpreted":
			entry.SecondsInterpreted = wall.Seconds()
		case "kernel":
			entry.SecondsKernel = wall.Seconds()
		case "fused":
			entry.SecondsFused = wall.Seconds()
		}
	}
	entry.BitIdentical = digests[0] == digests[1] && digests[1] == digests[2]
	entry.Digest = digests[2]
	if entry.SecondsFused > 0 {
		entry.FusedSpeedup = entry.SecondsKernel / entry.SecondsFused
		entry.InterpretedSpeedup = entry.SecondsInterpreted / entry.SecondsFused
	}
	return entry, nil
}

// fusionSimCircuits are the full-pipeline workloads (translation, CTAS
// statement fusion, setup, and output layers included).
func fusionSimCircuits(quick bool) []struct {
	name string
	c    *quantum.Circuit
} {
	if quick {
		return []struct {
			name string
			c    *quantum.Circuit
		}{
			{"sim_qft6", circuits.QFT(6)},
		}
	}
	return []struct {
		name string
		c    *quantum.Circuit
	}{
		{"sim_qft8", circuits.QFT(8)},
		{"sim_ansatz8x2", circuits.HardwareEfficientAnsatz(8, 2, fixedParams(8*2*2))},
	}
}

// chainSimEntry measures one circuit through the SQL backend with
// chain fusion off vs on (kernels on in both; each variant gets its
// own plan cache so the second and third runs hit the cached path).
func chainSimEntry(name string, c *quantum.Circuit, spillDir string) (FusionBenchEntry, error) {
	entry := FusionBenchEntry{Workload: name}
	var digests [2]string
	for i, chain := range []string{"off", "on"} {
		cache := sim.NewPlanCache(0)
		var res *sim.Result
		wall, err := Median3(func() (time.Duration, error) {
			r, err := (&sim.SQL{ChainFusion: chain, Cache: cache, SpillDir: spillDir}).Run(c)
			if err != nil {
				return 0, err
			}
			res = r
			return r.Stats.WallTime, nil
		})
		if err != nil {
			return entry, fmt.Errorf("bench: fusion %s (chain %s): %w", name, chain, err)
		}
		digests[i] = stateDigest(res.State)
		entry.Rows = int64(res.State.Len())
		fmt.Sscanf(res.Stats.Extra, "stages=%d", &entry.Stages)
		if chain == "off" {
			entry.SecondsKernel = wall.Seconds()
		} else {
			entry.SecondsFused = wall.Seconds()
		}
	}
	entry.BitIdentical = digests[0] == digests[1]
	entry.Digest = digests[1]
	if entry.SecondsFused > 0 {
		entry.FusedSpeedup = entry.SecondsKernel / entry.SecondsFused
	}
	return entry, nil
}

// RunChainFusionBench measures every chain depth and circuit across
// the execution variants and returns the report.
func RunChainFusionBench(opts Options) (*FusionBenchReport, error) {
	report := &FusionBenchReport{
		Engine:       "vectorized-batch/compiled-gate-kernels/chain-fusion",
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BitIdentical: true,
	}
	before := sqlengine.KernelCounters()

	depths := []int{4, 8, 16, 24}
	stateRows, reps := 1<<16, 5
	if opts.Quick {
		depths = []int{4, 16}
		stateRows, reps = 1<<13, 3
	}

	// 1. The headline sweep: cached deep chains on the serial path, one
	// entry per depth. The deepest chain's fused-vs-kernel ratio is the
	// number the CI gate asserts on.
	var entries []FusionBenchEntry
	for _, depth := range depths {
		e, err := chainDepthEntry(depth, stateRows, 1, reps)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
		if e.Stages >= report.HeadlineStages {
			report.HeadlineStages = e.Stages
			report.FusedSpeedup = e.FusedSpeedup
		}
	}

	// 2. The morsel-parallel path at the deepest depth: fused chain
	// stages run serially per stage but compete with the interpreted
	// executor's parallel aggregation.
	par, err := chainDepthEntry(depths[len(depths)-1], stateRows, 4, reps)
	if err != nil {
		return nil, err
	}
	entries = append(entries, par)

	// 3. Full simulations: translation emits fused CTAS statements
	// (core.FusedStatements), the engine fuses each statement's CTE
	// chain.
	for _, wl := range fusionSimCircuits(opts.Quick) {
		e, err := chainSimEntry(wl.name, wl.c, opts.SpillDir)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}

	after := sqlengine.KernelCounters()
	report.ChainCounters = map[string]int64{}
	for k, v := range after {
		if d := v - before[k]; d > 0 && (strings.HasPrefix(k, "chain_") || strings.HasPrefix(k, "fallback_chain")) {
			report.ChainCounters[k] = d
		}
	}
	for _, e := range entries {
		report.BitIdentical = report.BitIdentical && e.BitIdentical
	}
	report.Entries = entries
	return report, nil
}

// ChainFusionBenchJSON renders the report for
// BENCH_sqlengine_fusion.json.
func ChainFusionBenchJSON(opts Options) ([]byte, error) {
	report, err := RunChainFusionBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// FusionGate validates a BENCH_sqlengine_fusion.json report: all
// variants bit-identical, the fused pass actually engaged (chain
// counters moved), and the deepest chain (>= 16 stages) ran faster
// fused than stage-at-a-time. The CI fusion gate runs it on every
// push.
func FusionGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r FusionBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("fusion gate: %s: %w", path, err)
	}
	if !r.BitIdentical {
		return fmt.Errorf("fusion gate: %s: chain fusion changed result bits", path)
	}
	for _, e := range r.Entries {
		if !e.BitIdentical {
			return fmt.Errorf("fusion gate: %s: %s: chain fusion changed result bits", path, e.Workload)
		}
	}
	if r.HeadlineStages < 16 {
		return fmt.Errorf("fusion gate: %s: headline chain too shallow: %d stages, want >= 16", path, r.HeadlineStages)
	}
	if r.FusedSpeedup <= 1 {
		return fmt.Errorf("fusion gate: %s: fused chain not faster than single-stage kernels at %d stages: %.3f", path, r.HeadlineStages, r.FusedSpeedup)
	}
	if r.ChainCounters["chain_executions"] <= 0 {
		return fmt.Errorf("fusion gate: %s: no chain kernel ever executed", path)
	}
	if r.ChainCounters["chain_elided"] <= 0 {
		return fmt.Errorf("fusion gate: %s: no intermediate stage was ever elided", path)
	}
	return nil
}

func runChainFusionBench(opts Options) ([]*Table, error) {
	report, err := RunChainFusionBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("Whole-circuit kernel fusion: interpreted vs single-stage kernels vs fused chain",
		"workload", "stages", "interpreted", "kernel", "fused", "fused speedup", "bit-identical", "rows", "workers")
	for _, e := range report.Entries {
		t.Addf(e.Workload, e.Stages,
			FormatDuration(time.Duration(e.SecondsInterpreted*float64(time.Second))),
			FormatDuration(time.Duration(e.SecondsKernel*float64(time.Second))),
			FormatDuration(time.Duration(e.SecondsFused*float64(time.Second))),
			fmt.Sprintf("%.2fx", e.FusedSpeedup), e.BitIdentical, e.Rows, e.Workers)
	}
	t.Note("fused speedup = single-stage-kernel time / fused-chain time on the cached path")
	t.Note("chain counters during the fused runs: %v", report.ChainCounters)
	t.Note("bit-identical = all variants match exactly (float64 bit patterns, row order included)")
	return []*Table{t}, nil
}
