package bench

import (
	"errors"
	"fmt"
	"time"

	"qymera/internal/quantum"
	"qymera/internal/sim"
)

// RunResult is one (workload, backend) measurement.
type RunResult struct {
	Workload string
	Backend  string
	Err      error
	Stats    sim.Stats
	// Fidelity against the reference backend (first in the list), NaN
	// when no reference result is available.
	Fidelity float64
}

// Compare runs the circuit on every backend, using the first backend's
// state as the fidelity reference when it succeeds.
func Compare(c *quantum.Circuit, backends []sim.Backend) []RunResult {
	out := make([]RunResult, 0, len(backends))
	var ref *quantum.State
	for i, b := range backends {
		res, err := b.Run(c)
		rr := RunResult{Workload: c.Name(), Backend: b.Name(), Err: err, Fidelity: -1}
		if err == nil {
			rr.Stats = res.Stats
			if i == 0 {
				ref = res.State
				rr.Fidelity = 1
			} else if ref != nil {
				rr.Fidelity = res.State.Fidelity(ref)
			}
		}
		out = append(out, rr)
	}
	return out
}

// FormatDuration renders durations compactly for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FormatBytes renders byte counts compactly.
func FormatBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	}
}

// MaxQubits finds the largest register width in [minN, maxN] that the
// backend can simulate under its configured budget: it walks upward
// until a run fails with ErrMemoryBudget (any other error aborts).
// Returns 0 when even minN fails.
func MaxQubits(build func(n int) *quantum.Circuit, mk func() sim.Backend, minN, maxN int) (int, error) {
	best := 0
	for n := minN; n <= maxN; n++ {
		_, err := mk().Run(build(n))
		if err != nil {
			if errors.Is(err, sim.ErrMemoryBudget) {
				return best, nil
			}
			return best, fmt.Errorf("bench: max-qubits probe at n=%d: %w", n, err)
		}
		best = n
	}
	return best, nil
}

// Median3 runs fn three times and returns the median duration, damping
// scheduler noise in the timing tables.
func Median3(fn func() (time.Duration, error)) (time.Duration, error) {
	var ds []time.Duration
	for i := 0; i < 3; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		ds = append(ds, d)
	}
	if ds[0] > ds[1] {
		ds[0], ds[1] = ds[1], ds[0]
	}
	if ds[1] > ds[2] {
		ds[1], ds[2] = ds[2], ds[1]
	}
	if ds[0] > ds[1] {
		ds[0], ds[1] = ds[1], ds[0]
	}
	return ds[1], nil
}
