package bench

import (
	"qymera/internal/sqlengine"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Paper: "Table 1 (bitwise operations)",
		Desc:  "conformance of the SQL bitwise operators the translation relies on",
		Run:   runTable1,
	})
}

func runTable1(opts Options) ([]*Table, error) {
	db, err := sqlengine.Open(sqlengine.Config{SpillDir: opts.SpillDir})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	t := NewTable("Table 1: bitwise operations in SQL",
		"operation", "symbol", "example", "SQL result", "Go result", "check")

	type probe struct {
		op, sym, sql string
		want         int64
	}
	probes := []probe{
		{"Bitwise AND", "&", "SELECT 6 & 3", 6 & 3},
		{"Bitwise AND", "&", "SELECT 7 & ~1", 7 &^ 1},
		{"Bitwise OR", "|", "SELECT 4 | 1", 4 | 1},
		{"Bitwise OR", "|", "SELECT (5 & ~1) | 1", (5 &^ 1) | 1},
		{"Bitwise NOT", "~", "SELECT ~0", -1},
		{"Bitwise NOT", "~", "SELECT ~6", ^6},
		{"Left Shift", "<<", "SELECT 1 << 3", 1 << 3},
		{"Left Shift", "<<", "SELECT 3 << 4", 3 << 4},
		{"Right Shift", ">>", "SELECT 12 >> 2", 12 >> 2},
		{"Right Shift", ">>", "SELECT (6 >> 1) & 3", (6 >> 1) & 3},
	}
	allOK := true
	for _, p := range probes {
		rs, err := db.Query(p.sql)
		if err != nil {
			return nil, err
		}
		rows, err := rs.All()
		rs.Close()
		if err != nil {
			return nil, err
		}
		got, err := rows[0][0].AsInt()
		if err != nil {
			return nil, err
		}
		ok := got == p.want
		if !ok {
			allOK = false
		}
		t.Addf(p.op, p.sym, p.sql, got, p.want, verdict(ok))
	}
	t.Note("all operators match Go's int64 semantics: %v", verdict(allOK))
	return []*Table{t}, nil
}
