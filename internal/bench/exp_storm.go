package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qymera/internal/quantum"
	"qymera/internal/service"
	"qymera/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "storm",
		Paper: "qymerad under a multi-tenant service storm — latency tails, saturation, and inter-tenant fairness",
		Desc:  "floods an in-process durable qymerad (job log on) with concurrent mixed-circuit clients across equal-quota tenants, records p50/p99 latency, queue saturation, and the fairness spread of per-tenant throughput, and checks every served amplitude is bit-identical to a direct run; qybench -benchjson BENCH_service_storm.json writes the machine-readable report",
		Run:   runStorm,
	})
}

// StormTenantReport is one tenant's view of the storm.
type StormTenantReport struct {
	Requests int `json:"requests"`
	Done     int `json:"done"`
	// MakespanSeconds: first submit to last completion for this tenant.
	MakespanSeconds float64 `json:"makespan_seconds"`
	// ThroughputJPS is Done / MakespanSeconds.
	ThroughputJPS float64 `json:"throughput_jps"`
	// P50/P99Seconds are run-latency quantiles read from the server's
	// per-tenant /metrics histogram (log2 buckets, midpoint estimate)
	// rather than recomputed client-side — the storm doubles as an
	// end-to-end check of the metrics pipeline.
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// ServiceStormReport is the BENCH_service_storm.json payload.
type ServiceStormReport struct {
	Engine            string   `json:"engine"`
	NumCPU            int      `json:"num_cpu"`
	Workers           int      `json:"workers"`
	TenantCount       int      `json:"tenant_count"`
	ClientsPerTenant  int      `json:"clients_per_tenant"`
	RequestsPerClient int      `json:"requests_per_client"`
	TotalRequests     int      `json:"total_requests"`
	Mix               []string `json:"mix"`

	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputJPS float64 `json:"throughput_jps"`
	// P50/P99Seconds are submit→finish latency quantiles read from the
	// server's phase.total /metrics histogram (log2 buckets, midpoint
	// estimate), not from client-side samples.
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`

	// Saturation: peak sampled queue depth against capacity, plus how
	// often the scheduler had work it could not admit.
	PeakQueueDepth int   `json:"peak_queue_depth"`
	QueueCapacity  int   `json:"queue_capacity"`
	AdmissionWaits int64 `json:"admission_waits"`

	// FairnessSpread is max/min of per-tenant completions within the
	// shared window that ends when the first tenant drains its quota —
	// while every tenant still has demand, a fair scheduler completes
	// work for all of them at the same rate. 1.0 is perfectly fair; the
	// CI gate requires <= 1.5. (Makespan ratios are NOT used: the last
	// few trailing jobs would dominate them at small sizes.)
	FairnessSpread float64 `json:"fairness_spread"`

	// AmplitudesBitIdentical: every storm response matched the digest
	// of a direct in-process run of the same circuit.
	AmplitudesBitIdentical bool `json:"amplitudes_bit_identical"`

	// JobLogAppendedRecords: durability was on for the whole storm —
	// every submit/start/done hit the fsynced log.
	JobLogAppendedRecords int64 `json:"job_log_appended_records"`

	Tenants map[string]StormTenantReport `json:"tenants"`
}

// stormParams sizes the storm: quick mode for CI, full for the
// committed baseline.
func stormParams(opts Options) (tenants, clientsPerTenant, requestsPerClient int) {
	// Requests per client stay >= 4 so a tenant's makespan amortizes its
	// trailing job — with too few, the one-job tail alone pushes the
	// spread toward the 1.5 gate even under a perfectly fair scheduler.
	if opts.Quick {
		return 3, 4, 4
	}
	return 4, 50, 4
}

// RunStormBench floods a durable in-process qymerad and returns the
// report.
func RunStormBench(opts Options) (*ServiceStormReport, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	tenants, clientsPerTenant, requestsPerClient := stormParams(opts)
	totalClients := tenants * clientsPerTenant
	total := totalClients * requestsPerClient

	report := &ServiceStormReport{
		Engine:                 "qymerad (DRR fair scheduler + per-tenant quotas + persistent job log)",
		NumCPU:                 runtime.NumCPU(),
		Workers:                workers,
		TenantCount:            tenants,
		ClientsPerTenant:       clientsPerTenant,
		RequestsPerClient:      requestsPerClient,
		TotalRequests:          total,
		QueueCapacity:          2 * totalClients,
		AmplitudesBitIdentical: true,
		Tenants:                map[string]StormTenantReport{},
	}

	dataDir, err := os.MkdirTemp("", "qymera-storm-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dataDir)

	srv, err := service.Open(service.Config{
		Workers:    workers,
		QueueDepth: report.QueueCapacity,
		SpillDir:   opts.SpillDir,
		DataDir:    dataDir,
		RetainJobs: total + totalClients,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go http.Serve(l, srv)
	base := "http://" + l.Addr().String()

	// The mix every client cycles through — identical across tenants so
	// the fairness comparison is symmetric.
	mix := serviceMix(opts)
	bodies := make([][]byte, len(mix))
	digests := make([]string, len(mix))
	for i, wl := range mix {
		report.Mix = append(report.Mix, wl.name)
		doc, err := circuitDocJSON(wl.c)
		if err != nil {
			return nil, err
		}
		if bodies[i], err = json.Marshal(service.Request{Circuit: doc}); err != nil {
			return nil, err
		}
		direct, err := (&sim.SQL{SpillDir: opts.SpillDir}).Run(wl.c)
		if err != nil {
			return nil, fmt.Errorf("bench: storm: direct %s: %w", wl.name, err)
		}
		digests[i] = stateDigest(direct.State)
	}

	type sample struct {
		tenant string
		doneAt time.Duration // completion time relative to storm start
		ok     bool
	}
	samples := make([]sample, total)
	var mismatches atomic.Int64
	var firstErr atomic.Value

	// Saturation sampler: polls queue depth while the storm runs.
	stopSampling := make(chan struct{})
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(10 * time.Millisecond):
				if d := srv.Metrics().QueueDepth; d > report.PeakQueueDepth {
					report.PeakQueueDepth = d
				}
			}
		}
	}()

	tenantName := func(i int) string { return fmt.Sprintf("tenant-%d", i) }
	var wg sync.WaitGroup
	start := time.Now()
	for ti := 0; ti < tenants; ti++ {
		for ci := 0; ci < clientsPerTenant; ci++ {
			wg.Add(1)
			go func(ti, ci int) {
				defer wg.Done()
				tenant := tenantName(ti)
				for r := 0; r < requestsPerClient; r++ {
					// Stagger the mix so circuits interleave within and
					// across tenants.
					wi := (ci + r) % len(mix)
					idx := (ti*clientsPerTenant+ci)*requestsPerClient + r
					st, err := postSimulateTenant(base, bodies[wi], tenant)
					if err != nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("tenant %s: %w", tenant, err))
						return
					}
					if stateDigest(st) != digests[wi] {
						mismatches.Add(1)
					}
					samples[idx] = sample{tenant: tenant, doneAt: time.Since(start), ok: true}
				}
			}(ti, ci)
		}
	}
	wg.Wait()
	report.WallSeconds = time.Since(start).Seconds()
	close(stopSampling)
	samplerWg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, fmt.Errorf("bench: storm: %w", err)
	}
	if mismatches.Load() > 0 {
		report.AmplitudesBitIdentical = false
	}

	// Latency tails come from the server's own /metrics histograms —
	// overall from the phase.total histogram (submit→finish), per
	// tenant from the tenant latency histogram. The client keeps only
	// completion times (for makespan and the fairness window).
	metrics := srv.Metrics()
	perTenantDone := map[string]int{}
	tenantEnd := map[string]time.Duration{}
	for idx, s := range samples {
		if !s.ok {
			return nil, fmt.Errorf("bench: storm: sample %d missing", idx)
		}
		perTenantDone[s.tenant]++
		if s.doneAt > tenantEnd[s.tenant] {
			tenantEnd[s.tenant] = s.doneAt
		}
	}
	report.P50Seconds = metrics.Phases["total"].P50Seconds
	report.P99Seconds = metrics.Phases["total"].P99Seconds
	if report.WallSeconds > 0 {
		report.ThroughputJPS = float64(total) / report.WallSeconds
	}

	for ti := 0; ti < tenants; ti++ {
		name := tenantName(ti)
		done := perTenantDone[name]
		makespan := tenantEnd[name].Seconds()
		lat := metrics.Tenants[name].Latency
		tr := StormTenantReport{
			Requests:        done,
			Done:            done,
			MakespanSeconds: makespan,
			P50Seconds:      lat.P50Seconds,
			P99Seconds:      lat.P99Seconds,
		}
		if makespan > 0 {
			tr.ThroughputJPS = float64(done) / makespan
		}
		report.Tenants[name] = tr
	}

	// Fairness: compare per-tenant completion counts inside the window
	// where every tenant still has demand — it closes the moment the
	// first tenant drains. A fair scheduler serves all tenants at the
	// same rate while they all have work, so the counts come out equal
	// (up to the +-1 job in flight at the window edge).
	window := time.Duration(0)
	for _, end := range tenantEnd {
		if window == 0 || end < window {
			window = end
		}
	}
	minDone, maxDone := 0, 0
	for ti := 0; ti < tenants; ti++ {
		name := tenantName(ti)
		done := 0
		for _, s := range samples {
			if s.tenant == name && s.doneAt <= window {
				done++
			}
		}
		if minDone == 0 || done < minDone {
			minDone = done
		}
		if done > maxDone {
			maxDone = done
		}
	}
	if minDone > 0 {
		report.FairnessSpread = float64(maxDone) / float64(minDone)
	}

	report.AdmissionWaits = metrics.AdmissionWaits
	report.JobLogAppendedRecords = metrics.JobLog.AppendedRecords
	return report, nil
}

// postSimulateTenant is postSimulate with a tenant header.
func postSimulateTenant(base string, body []byte, tenant string) (*quantum.State, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d from /v1/simulate", resp.StatusCode)
	}
	var res service.ResultJSON
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, err
	}
	st := quantum.NewState(res.NumQubits)
	for _, a := range res.Amplitudes {
		st.Set(a.S, complex(a.R, a.I))
	}
	return st, nil
}

// StormBenchJSON renders the report for BENCH_service_storm.json.
func StormBenchJSON(opts Options) ([]byte, error) {
	report, err := RunStormBench(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// StormGate validates a storm report for CI: amplitudes bit-identical,
// a real latency tail, and a fair spread between equal-quota tenants.
func StormGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r ServiceStormReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("storm gate: %s: %w", path, err)
	}
	if !r.AmplitudesBitIdentical {
		return fmt.Errorf("storm gate: %s: served amplitudes were not bit-identical to direct runs", path)
	}
	if r.P99Seconds <= 0 {
		return fmt.Errorf("storm gate: %s: p99 latency %v is not positive — empty or broken sample", path, r.P99Seconds)
	}
	if r.FairnessSpread <= 0 || r.FairnessSpread > 1.5 {
		return fmt.Errorf("storm gate: %s: fairness spread %.3f outside (0, 1.5] — a tenant starved", path, r.FairnessSpread)
	}
	return nil
}

func runStorm(opts Options) ([]*Table, error) {
	report, err := RunStormBench(opts)
	if err != nil {
		return nil, err
	}
	t := NewTable("qymerad service storm", "metric", "value")
	t.Addf("storm", fmt.Sprintf("%d tenants x %d clients x %d requests = %d (workers=%d)",
		report.TenantCount, report.ClientsPerTenant, report.RequestsPerClient, report.TotalRequests, report.Workers))
	t.Addf("throughput", fmt.Sprintf("%.1f jobs/s over %.2fs", report.ThroughputJPS, report.WallSeconds))
	t.Addf("latency p50 / p99", fmt.Sprintf("%s / %s",
		FormatDuration(time.Duration(report.P50Seconds*float64(time.Second))),
		FormatDuration(time.Duration(report.P99Seconds*float64(time.Second)))))
	t.Addf("peak queue depth", fmt.Sprintf("%d / %d capacity (admission waits: %d)",
		report.PeakQueueDepth, report.QueueCapacity, report.AdmissionWaits))
	t.Addf("fairness spread (max/min tenant throughput)", fmt.Sprintf("%.3f", report.FairnessSpread))
	t.Addf("amplitudes bit-identical (served vs direct)", report.AmplitudesBitIdentical)
	t.Addf("job log records (durability on)", report.JobLogAppendedRecords)
	for name, tr := range report.Tenants {
		t.Addf("tenant "+name, fmt.Sprintf("%d done, makespan %.2fs, p99 %s",
			tr.Done, tr.MakespanSeconds, FormatDuration(time.Duration(tr.P99Seconds*float64(time.Second)))))
	}
	t.Note("num_cpu=%d; every request carried a tenant header and went through the DRR scheduler and the fsynced job log", report.NumCPU)
	t.Note("p50/p99 read from the server's /metrics histograms (phase.total overall, per-tenant latency per tenant)")
	return []*Table{t}, nil
}
