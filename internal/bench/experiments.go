package bench

import (
	"fmt"
	"sort"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks problem sizes so the full suite runs in seconds
	// (used by tests); the default sizes match EXPERIMENTS.md.
	Quick bool
	// SpillDir hosts out-of-core temp files ("" = OS temp dir).
	SpillDir string
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure/scenario of the paper
	Desc  string
	Run   func(opts Options) ([]*Table, error)
}

// registry is populated by the exp_*.go files' init functions.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Experiments lists all registered experiments ordered by ID.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		var ids []string
		for _, x := range Experiments() {
			ids = append(ids, x.ID)
		}
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
	}
	return e, nil
}
